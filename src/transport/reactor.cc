#include "src/transport/reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"

namespace rmp {

namespace {

Status ErrnoError(const char* what) {
  return IoError(std::string(what) + ": " + std::strerror(errno));
}

// Process-wide reactor counters: connections come and go, so totals are only
// meaningful summed across every loop and instance.
struct ReactorMetrics {
  Counter& frames_sent;
  Counter& frames_received;
  Counter& bytes_sent;
  Counter& bytes_received;
  Counter& accepts;
  Gauge& connections;
};

ReactorMetrics& Metrics() {
  static ReactorMetrics* metrics = new ReactorMetrics{
      *MetricsRegistry::Global().GetCounter("reactor.frames_sent"),
      *MetricsRegistry::Global().GetCounter("reactor.frames_received"),
      *MetricsRegistry::Global().GetCounter("reactor.bytes_sent"),
      *MetricsRegistry::Global().GetCounter("reactor.bytes_received"),
      *MetricsRegistry::Global().GetCounter("reactor.accepts"),
      *MetricsRegistry::Global().GetGauge("reactor.connections"),
  };
  return *metrics;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl(O_NONBLOCK)");
  }
  return OkStatus();
}

// Frames handed to writev per call: 32 frames → at most 64 iovecs, well
// under IOV_MAX, large enough to coalesce small acks into one syscall.
constexpr size_t kWritevFrames = 32;
constexpr int kMaxPollEvents = 128;
// Level-triggered read rounds per event; the poll re-fires for the rest, so
// one flooding connection cannot monopolize its loop.
constexpr int kLevelTriggeredReadRounds = 4;
constexpr int kAcceptsPerEvent = 64;

class EpollBackend final : public PollBackend {
 public:
  static std::unique_ptr<PollBackend> Create() {
    UniqueFd fd(::epoll_create1(0));
    if (!fd.valid()) {
      return nullptr;
    }
    return std::unique_ptr<PollBackend>(new EpollBackend(std::move(fd)));
  }

  const char* name() const override { return "epoll"; }

  Status Add(int fd, uint32_t events) override { return Ctl(EPOLL_CTL_ADD, fd, events); }
  Status Mod(int fd, uint32_t events) override { return Ctl(EPOLL_CTL_MOD, fd, events); }
  void Del(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  int Wait(PollEvent* out, int max) override {
    epoll_event events[kMaxPollEvents];
    const int cap = max < kMaxPollEvents ? max : kMaxPollEvents;
    const int n = ::epoll_wait(epfd_.get(), events, cap, -1);
    if (n < 0) {
      return errno == EINTR ? 0 : -1;
    }
    for (int i = 0; i < n; ++i) {
      out[i].fd = events[i].data.fd;
      out[i].events = events[i].events;
    }
    return n;
  }

 private:
  explicit EpollBackend(UniqueFd fd) : epfd_(std::move(fd)) {}

  Status Ctl(int op, int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_.get(), op, fd, &ev) != 0) {
      return ErrnoError("epoll_ctl");
    }
    return OkStatus();
  }

  UniqueFd epfd_;
};

}  // namespace

std::unique_ptr<PollBackend> MakeEpollBackend() { return EpollBackend::Create(); }

#ifndef RMP_IO_URING
// Built without the io_uring backend (see reactor_uring.cc): always fall
// back to epoll.
std::unique_ptr<PollBackend> MakeIoUringBackend() { return nullptr; }
#endif

// --- UniqueFd ---------------------------------------------------------------

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    Reset(other.Release());
  }
  return *this;
}

int UniqueFd::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

// --- ReactorOptions ---------------------------------------------------------

Result<ReactorOptions> ReactorOptions::FromConfig(const Config& config) {
  ReactorOptions options;
  auto loops = config.GetInt("reactor.loop_threads", options.loop_threads);
  if (!loops.ok()) {
    return loops.status();
  }
  if (*loops < 1 || *loops > 64) {
    return InvalidArgumentError("reactor.loop_threads out of range [1, 64]");
  }
  options.loop_threads = static_cast<int>(*loops);
  auto edge = config.GetBool("reactor.edge_triggered", options.edge_triggered);
  if (!edge.ok()) {
    return edge.status();
  }
  options.edge_triggered = *edge;
  auto uring = config.GetBool("reactor.io_uring", options.use_io_uring);
  if (!uring.ok()) {
    return uring.status();
  }
  options.use_io_uring = *uring;
  auto sndbuf_kb = config.GetInt("reactor.sndbuf_kb", options.sndbuf_bytes / 1024);
  if (!sndbuf_kb.ok()) {
    return sndbuf_kb.status();
  }
  if (*sndbuf_kb < 0 || *sndbuf_kb > 64 * 1024) {
    return InvalidArgumentError("reactor.sndbuf_kb out of range [0, 65536]");
  }
  options.sndbuf_bytes = static_cast<int>(*sndbuf_kb) * 1024;
  return options;
}

// --- BufferPool -------------------------------------------------------------

BufferPool::BufferPool(size_t buffer_bytes, size_t max_pooled)
    : buffer_bytes_(buffer_bytes), max_pooled_(max_pooled) {}

BufferPool::Lease& BufferPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    data_ = std::move(other.data_);
    other.pool_ = nullptr;
  }
  return *this;
}

void BufferPool::Lease::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->Release(std::move(data_));
  }
  pool_ = nullptr;
}

BufferPool::Lease BufferPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto buffer = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(buffer));
    }
  }
  created_.fetch_add(1, std::memory_order_relaxed);
  return Lease(this, std::make_unique<uint8_t[]>(buffer_bytes_));
}

void BufferPool::Release(std::unique_ptr<uint8_t[]> buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.size() < max_pooled_) {
    free_.push_back(std::move(buffer));
  }
}

size_t BufferPool::pooled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

// --- ReactorConnection ------------------------------------------------------

ReactorConnection::ReactorConnection(UniqueFd fd, std::shared_ptr<FrameSink> sink,
                                     EventLoop* loop)
    : loop_(loop), fd_(std::move(fd)), sink_(std::move(sink)) {}

bool ReactorConnection::Send(Message frame, std::function<void()> on_written,
                             bool flush) {
  OutFrame out;
  EncodeHeader(frame, PayloadCrc(std::span<const uint8_t>(frame.payload)), out.prefix);
  out.payload = std::move(frame.payload);
  out.on_written = std::move(on_written);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      return false;
    }
    outq_.push_back(std::move(out));
    queued_frames_.fetch_add(1, std::memory_order_relaxed);
  }
  if (flush) {
    MaybeFlush();
  }
  return true;
}

void ReactorConnection::Close(Status reason) {
  closed_.store(true, std::memory_order_release);
  loop_->Post([self = shared_from_this(), reason = std::move(reason)] {
    self->CloseOnLoop(reason);
  });
}

void ReactorConnection::CloseAfterFlush(Status reason) {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_.store(true, std::memory_order_release);  // No further Sends.
    closing_after_flush_ = true;
    deferred_close_reason_ = reason;
    if (outq_.empty() && !close_posted_) {
      close_posted_ = true;
      drained = true;
    }
  }
  if (drained) {
    loop_->Post([self = shared_from_this(), reason = std::move(reason)] {
      self->CloseOnLoop(reason);
    });
  }
  // Otherwise the flusher that drains the last frame posts the close.
}

void ReactorConnection::MaybeFlush() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A running flusher picks up newly queued frames itself; with EPOLLOUT
    // armed the loop owns the resumption.
    if (flushing_ || want_write_ || outq_.empty()) {
      return;
    }
    flushing_ = true;
  }
  DoFlush();
}

void ReactorConnection::DoFlush() {
  // Holds the single-flusher role: only this thread pops outq_ until it
  // clears `flushing_`, so iovecs built under the lock stay valid across the
  // unlocked sendmsg (deque push_back does not invalidate references).
  std::vector<std::function<void()>> completed;
  std::deque<OutFrame> dropped;
  for (;;) {
    iovec iov[kWritevFrames * 2];
    int iovcnt = 0;
    size_t want = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_.load(std::memory_order_relaxed) && close_posted_) {
        // CloseOnLoop ran (or is posted) while we flushed: it left the queue
        // to us. Drop it without firing callbacks.
        dropped.swap(outq_);
        flushing_ = false;
        break;
      }
      if (outq_.empty() || want_write_) {
        if (outq_.empty() && closing_after_flush_ && !close_posted_) {
          close_posted_ = true;
          loop_->Post([self = shared_from_this()] {
            self->CloseOnLoop(self->deferred_close_reason_);
          });
        }
        flushing_ = false;
        break;
      }
      // Scatter-gather straight out of the queued frames (no coalescing
      // copy): each frame contributes its header iovec and its payload
      // iovec, offset by how much a previous partial write already sent.
      for (const OutFrame& frame : outq_) {
        if (iovcnt + 2 > static_cast<int>(kWritevFrames * 2)) {
          break;
        }
        size_t offset = frame.sent;
        if (offset < kWirePrefixSize) {
          iov[iovcnt].iov_base = const_cast<uint8_t*>(frame.prefix) + offset;
          iov[iovcnt].iov_len = kWirePrefixSize - offset;
          ++iovcnt;
          offset = 0;
        } else {
          offset -= kWirePrefixSize;
        }
        if (offset < frame.payload.size()) {
          iov[iovcnt].iov_base = const_cast<uint8_t*>(frame.payload.data()) + offset;
          iov[iovcnt].iov_len = frame.payload.size() - offset;
          ++iovcnt;
        }
      }
      for (int i = 0; i < iovcnt; ++i) {
        want += iov[i].iov_len;
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket full: hand the remainder to the event loop via EPOLLOUT.
        {
          std::lock_guard<std::mutex> lock(mutex_);
          want_write_ = true;
          flushing_ = false;
        }
        if (loop_->IsLoopThread()) {
          ArmWriteOnLoop();
        } else {
          loop_->Post([self = shared_from_this()] { self->ArmWriteOnLoop(); });
        }
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        flushing_ = false;
      }
      Close(ErrnoError("sendmsg"));
      break;
    }
    Metrics().bytes_sent.Increment(n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      size_t remaining = static_cast<size_t>(n);
      while (remaining > 0 && !outq_.empty()) {
        OutFrame& frame = outq_.front();
        const size_t total = kWirePrefixSize + frame.payload.size();
        const size_t take = std::min(remaining, total - frame.sent);
        frame.sent += take;
        remaining -= take;
        if (frame.sent < total) {
          break;
        }
        Metrics().frames_sent.Increment();
        queued_frames_.fetch_sub(1, std::memory_order_relaxed);
        if (frame.on_written) {
          completed.push_back(std::move(frame.on_written));
        }
        outq_.pop_front();
      }
    }
    for (auto& cb : completed) {
      cb();
    }
    completed.clear();
    if (static_cast<size_t>(n) < want) {
      // Short write: the socket buffer is (nearly) full. Try once more; the
      // next sendmsg returns EAGAIN if it truly is, arming EPOLLOUT above.
      continue;
    }
  }
  if (!dropped.empty()) {
    queued_frames_.fetch_sub(dropped.size(), std::memory_order_relaxed);
  }
}

void ReactorConnection::ArmWriteOnLoop() {
  if (closed_on_loop_ || !in_poll_) {
    return;
  }
  uint32_t events = EPOLLIN | EPOLLOUT;
  if (loop_->options_.edge_triggered) {
    events |= EPOLLET;
  }
  Status status = loop_->backend_->Mod(fd_.get(), events);
  if (!status.ok()) {
    CloseOnLoop(status);
  }
}

void ReactorConnection::HandleWritable() {
  if (closed_on_loop_) {
    return;
  }
  bool take = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    want_write_ = false;
    if (!flushing_) {
      flushing_ = true;
      take = true;
    }
  }
  // Disarm EPOLLOUT before flushing: level-triggered OUT on a writable
  // socket would spin the loop otherwise. A renewed EAGAIN re-arms it.
  uint32_t events = EPOLLIN;
  if (loop_->options_.edge_triggered) {
    events |= EPOLLET;
  }
  Status status = loop_->backend_->Mod(fd_.get(), events);
  if (!status.ok()) {
    if (take) {
      std::lock_guard<std::mutex> lock(mutex_);
      flushing_ = false;
    }
    CloseOnLoop(status);
    return;
  }
  if (take) {
    DoFlush();
  }
}

void ReactorConnection::HandleReadable() {
  BufferPool::Lease lease = loop_->pool_->Acquire();
  const int rounds = loop_->options_.edge_triggered ? INT32_MAX : kLevelTriggeredReadRounds;
  for (int round = 0; round < rounds; ++round) {
    const ssize_t n = ::recv(fd_.get(), lease.data(), lease.size(), 0);
    if (n > 0) {
      Metrics().bytes_received.Increment(n);
      std::span<const uint8_t> chunk(lease.data(), static_cast<size_t>(n));
      // Resume a partial frame through the buffering FrameReader first; its
      // hostile-length check (payload_len bound before any buffering) is the
      // wire-safety gate for the slow path.
      if (reader_.buffered_bytes() > 0) {
        reader_.Feed(chunk);
        chunk = {};
        for (;;) {
          auto frame = reader_.Next();
          if (!frame.ok()) {
            if (frame.status().code() == ErrorCode::kNotFound) {
              break;  // Partial frame; resume on the next readable event.
            }
            // Hostile length / bad magic / CRC mismatch: drop the stream.
            CloseOnLoop(frame.status());
            return;
          }
          Metrics().frames_received.Increment();
          sink_->OnFrame(std::move(*frame));
          if (closed_on_loop_) {
            return;  // The sink closed us mid-batch.
          }
        }
      }
      // Fast path: decode complete frames straight out of the scratch
      // buffer, skipping the FrameReader copy; only a trailing partial
      // frame is buffered. DecodeHeader performs the same magic / reserved
      // field / payload-bound validation the FrameReader path applies.
      while (chunk.size() >= kWirePrefixSize) {
        auto header = DecodeHeader(chunk.subspan(0, kWirePrefixSize));
        if (!header.ok()) {
          CloseOnLoop(header.status());
          return;
        }
        const size_t total = kWirePrefixSize + header->payload_len;
        if (chunk.size() < total) {
          break;
        }
        Message frame = MessageFromHeader(*header);
        if (header->payload_len > 0) {
          frame.payload.assign(chunk.data() + kWirePrefixSize, chunk.data() + total);
        }
        if (PayloadCrc(std::span<const uint8_t>(frame.payload)) != header->payload_crc) {
          CloseOnLoop(CorruptionError("payload CRC mismatch"));
          return;
        }
        Metrics().frames_received.Increment();
        sink_->OnFrame(std::move(frame));
        if (closed_on_loop_) {
          return;
        }
        chunk = chunk.subspan(total);
      }
      if (!chunk.empty()) {
        reader_.Feed(chunk);
      }
      if (static_cast<size_t>(n) < lease.size() && !loop_->options_.edge_triggered) {
        return;  // Likely drained; level-triggered poll re-fires otherwise.
      }
      continue;
    }
    if (n == 0) {
      CloseOnLoop(UnavailableError("peer closed connection"));
      return;
    }
    if (errno == EINTR) {
      --round;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    CloseOnLoop(ErrnoError("recv"));
    return;
  }
}

void ReactorConnection::CloseOnLoop(const Status& reason) {
  if (closed_on_loop_) {
    return;
  }
  closed_on_loop_ = true;
  std::deque<OutFrame> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_.store(true, std::memory_order_release);
    close_posted_ = true;
    if (!flushing_) {
      // No flusher mid-sendmsg: safe to free the queued frames here. An
      // active flusher sees closed_ + close_posted_ on its next lock and
      // drops the queue itself (freeing frames under it would leave its
      // iovecs dangling).
      dropped.swap(outq_);
    }
  }
  queued_frames_.fetch_sub(dropped.size(), std::memory_order_relaxed);
  if (in_poll_) {
    loop_->backend_->Del(fd_.get());
    in_poll_ = false;
  }
  loop_->conns_.erase(fd_.get());
  // Shutdown, don't close: the fd stays allocated until the connection
  // object dies, so a racing flusher can never write to a recycled
  // descriptor (its sendmsg just fails with EPIPE).
  ::shutdown(fd_.get(), SHUT_RDWR);
  Metrics().connections.Add(-1);
  // Release the sink after the callback: breaks the conn↔sink ownership
  // cycle so sessions free as soon as their owner lets go.
  std::shared_ptr<FrameSink> sink = std::move(sink_);
  if (sink != nullptr) {
    sink->OnClose(reason);
  }
}

// --- EventLoop --------------------------------------------------------------

EventLoop::EventLoop(int index, const ReactorOptions& options, BufferPool* pool,
                     const std::string& metric_prefix)
    : index_(index),
      options_(options),
      pool_(pool),
      ready_events_gauge_(*MetricsRegistry::Global().GetGauge(
          metric_prefix + ".loop" + std::to_string(index) + ".ready_events")),
      dispatches_(*MetricsRegistry::Global().GetCounter(
          metric_prefix + ".loop" + std::to_string(index) + ".dispatches")) {
  if (options_.use_io_uring) {
    backend_ = MakeIoUringBackend();
  }
  if (backend_ == nullptr) {
    backend_ = MakeEpollBackend();
  }
}

EventLoop::~EventLoop() { StopAndJoin(); }

Status EventLoop::Start() {
  if (backend_ == nullptr) {
    return InternalError("no poll backend available");
  }
  wakeup_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wakeup_fd_.valid()) {
    return ErrnoError("eventfd");
  }
  Status status = backend_->Add(wakeup_fd_.get(), EPOLLIN);
  if (!status.ok()) {
    return status;
  }
  thread_ = std::thread([this] { Run(); });
  return OkStatus();
}

void EventLoop::Post(std::function<void()> task) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    if (!accepting_tasks_) {
      return;
    }
    tasks_.push_back(std::move(task));
    if (!wakeup_armed_) {
      wakeup_armed_ = true;
      wake = true;
    }
  }
  if (wake) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wakeup_fd_.get(), &one, sizeof(one));
  }
}

void EventLoop::RunTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    tasks.swap(tasks_);
    wakeup_armed_ = false;
  }
  for (auto& task : tasks) {
    task();
  }
}

void EventLoop::AcceptReady(Listener* listener) {
  for (int i = 0; i < kAcceptsPerEvent; ++i) {
    const int fd = ::accept4(listener->fd.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ECONNABORTED) {
        RMP_LOG(kWarning) << "accept failed: " << std::strerror(errno);
      }
      return;
    }
    Metrics().accepts.Increment();
    listener->on_accept(UniqueFd(fd));
  }
}

void EventLoop::CloseAllOnLoop() {
  // Copy: CloseOnLoop erases from conns_.
  std::vector<std::shared_ptr<ReactorConnection>> conns;
  conns.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) {
    conns.push_back(conn);
  }
  for (auto& conn : conns) {
    conn->CloseOnLoop(UnavailableError("reactor stopped"));
  }
  listeners_.clear();
}

void EventLoop::Run() {
  PollEvent events[kMaxPollEvents];
  while (running_) {
    const int n = backend_->Wait(events, kMaxPollEvents);
    if (n < 0) {
      RMP_LOG(kWarning) << "poll backend failed on loop " << index_ << "; loop exiting";
      break;
    }
    ready_events_gauge_.Set(n);
    for (int i = 0; i < n && running_; ++i) {
      const PollEvent& event = events[i];
      dispatches_.Increment();
      if (event.fd == wakeup_fd_.get()) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wakeup_fd_.get(), &drained, sizeof(drained));
        RunTasks();
        continue;
      }
      auto listener_it = listeners_.find(event.fd);
      if (listener_it != listeners_.end()) {
        AcceptReady(&listener_it->second);
        continue;
      }
      auto it = conns_.find(event.fd);
      if (it == conns_.end()) {
        continue;  // Closed earlier in this batch.
      }
      std::shared_ptr<ReactorConnection> conn = it->second;
      if ((event.events & EPOLLERR) != 0) {
        conn->CloseOnLoop(IoError("socket error"));
        continue;
      }
      if ((event.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) != 0) {
        conn->HandleReadable();
      }
      if ((event.events & EPOLLOUT) != 0) {
        conn->HandleWritable();
      }
    }
  }
}

void EventLoop::StopAndJoin() {
  if (!thread_.joinable()) {
    return;
  }
  Post([this] {
    CloseAllOnLoop();
    running_ = false;
  });
  thread_.join();
  std::lock_guard<std::mutex> lock(task_mutex_);
  accepting_tasks_ = false;
  tasks_.clear();
}

// --- Reactor ----------------------------------------------------------------

namespace {
std::string AutoPrefix(const std::string& requested) {
  if (!requested.empty()) {
    return requested;
  }
  static std::atomic<int> next{0};
  return "reactor" + std::to_string(next.fetch_add(1));
}
}  // namespace

Reactor::Reactor(ReactorOptions options, std::string metric_prefix)
    : options_(options),
      pool_(options.read_chunk_bytes, options.pooled_read_buffers) {
  const std::string prefix = AutoPrefix(metric_prefix);
  const int loops = options_.loop_threads < 1 ? 1 : options_.loop_threads;
  loops_.reserve(static_cast<size_t>(loops));
  for (int i = 0; i < loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(i, options_, &pool_, prefix));
    Status started = loops_.back()->Start();
    if (!started.ok()) {
      RMP_LOG(kError) << "event loop " << i << " failed to start: " << started.ToString();
      loops_.pop_back();
    }
  }
  if (loops_.empty()) {
    // Keep the invariant that at least one loop exists; a loop whose Start
    // failed still drops posted tasks safely.
    loops_.push_back(std::make_unique<EventLoop>(0, options_, &pool_, prefix));
    (void)loops_.back()->Start();
  }
}

Reactor::~Reactor() { Stop(); }

Reactor& Reactor::Shared() {
  static Reactor* shared = [] {
    ReactorOptions options;
    if (const char* env = std::getenv("RMP_CLIENT_LOOPS")) {
      const int loops = std::atoi(env);
      if (loops >= 1 && loops <= 64) {
        options.loop_threads = loops;
      }
    }
    return new Reactor(options, "reactor.cli");
  }();
  return *shared;
}

std::shared_ptr<ReactorConnection> Reactor::Register(UniqueFd fd,
                                                     std::shared_ptr<FrameSink> sink) {
  if (stopped_.load(std::memory_order_acquire)) {
    return nullptr;
  }
  Status nonblocking = SetNonBlocking(fd.get());
  if (!nonblocking.ok()) {
    return nullptr;
  }
  if (options_.sndbuf_bytes > 0) {
    // Nonblocking writers pay an EPOLLOUT round trip (two epoll_ctl calls
    // plus a poll cycle of delay) every time sendmsg hits EAGAIN; the kernel
    // default (net.ipv4.tcp_wmem[1], commonly 16KB) backpressures after two
    // pages. Explicit headroom keeps the direct-write fast path direct.
    const int sndbuf = options_.sndbuf_bytes;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  }
  EventLoop* loop =
      loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size()].get();
  auto conn = std::shared_ptr<ReactorConnection>(
      new ReactorConnection(std::move(fd), std::move(sink), loop));
  loop->Post([loop, conn] {
    const int fd = conn->fd_.get();
    loop->conns_[fd] = conn;
    Metrics().connections.Add(1);
    conn->sink_->OnOpen(conn);
    uint32_t events = EPOLLIN;
    if (loop->options_.edge_triggered) {
      events |= EPOLLET;
    }
    Status added = loop->backend_->Add(fd, events);
    if (!added.ok()) {
      conn->CloseOnLoop(added);
      return;
    }
    conn->in_poll_ = true;
  });
  return conn;
}

Status Reactor::AddListener(UniqueFd listen_fd, std::function<void(UniqueFd)> on_accept) {
  if (stopped_.load(std::memory_order_acquire)) {
    return UnavailableError("reactor stopped");
  }
  Status nonblocking = SetNonBlocking(listen_fd.get());
  if (!nonblocking.ok()) {
    return nonblocking;
  }
  EventLoop* loop =
      loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size()].get();
  const int fd = listen_fd.get();
  loop->Post([loop, fd, listen_fd = std::make_shared<UniqueFd>(std::move(listen_fd)),
              on_accept = std::move(on_accept)]() mutable {
    EventLoop::Listener listener;
    listener.fd = std::move(*listen_fd);
    listener.on_accept = std::move(on_accept);
    Status added = loop->backend_->Add(fd, EPOLLIN);
    if (!added.ok()) {
      RMP_LOG(kError) << "listener registration failed: " << added.ToString();
      return;
    }
    loop->listeners_.emplace(fd, std::move(listener));
  });
  return OkStatus();
}

void Reactor::Stop() {
  if (stopped_.exchange(true)) {
    return;
  }
  for (auto& loop : loops_) {
    loop->StopAndJoin();
  }
}

}  // namespace rmp
