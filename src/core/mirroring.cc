#include "src/core/mirroring.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/util/logging.h"

namespace rmp {

Result<MirroringBackend::Replica> MirroringBackend::AcquireReplicaSlot(TimeNs* now,
                                                                       size_t avoid) {
  for (size_t attempts = 0; attempts < cluster_.size() + 1; ++attempts) {
    auto pick = cluster_.NextUsable(&rr_cursor_);
    if (!pick.ok()) {
      return pick.status();
    }
    if (*pick == avoid) {
      // Only one usable peer left and it is the one to avoid.
      if (cluster_.size() == 1) {
        return NoSpaceError("cannot mirror on a single server");
      }
      auto second = cluster_.NextUsable(&rr_cursor_);
      if (!second.ok() || *second == avoid) {
        return NoSpaceError("no second server available for mirror");
      }
      pick = second;
    }
    const size_t peer_index = *pick;
    ServerPeer& peer = cluster_.peer(peer_index);
    auto slot = TakeSlotOn(peer_index, now);
    if (!slot.ok()) {
      if (slot.status().code() == ErrorCode::kNoSpace) {
        peer.set_stopped(true);
        continue;
      }
      if (IsRetryableError(slot.status())) {
        continue;  // Try the next peer; the pool loop is the failover.
      }
      return slot.status();
    }
    return Replica{peer_index, *slot};
  }
  return NoSpaceError("no usable server for mirror replica");
}

Result<MirroringBackend::Replica> MirroringBackend::AcquireReplicaSlotPreferring(
    size_t preferred, size_t avoid, TimeNs* now) {
  if (preferred < cluster_.size() && preferred != avoid && cluster_.peer(preferred).usable()) {
    auto slot = TakeSlotOn(preferred, now);
    if (slot.ok()) {
      return Replica{preferred, *slot};
    }
    if (slot.status().code() == ErrorCode::kNoSpace) {
      cluster_.peer(preferred).set_stopped(true);
    } else if (!IsRetryableError(slot.status())) {
      return slot.status();
    }
    // Preferred peer full or flaky: any usable peer beats failing the write.
  }
  return AcquireReplicaSlot(now, avoid);
}

Result<MirroringBackend::Replica> MirroringBackend::WriteNewReplica(
    TimeNs* now, std::span<const uint8_t> data, size_t avoid) {
  for (size_t attempts = 0; attempts < cluster_.size() + 1; ++attempts) {
    auto replica = AcquireReplicaSlot(now, avoid);
    if (!replica.ok()) {
      return replica.status();
    }
    ServerPeer& peer = cluster_.peer(replica->peer);
    auto advise = ReliablePageOut(replica->peer, replica->slot, data, now);
    if (!advise.ok()) {
      // The slot dies with the server; retry elsewhere.
      if (IsRetryableError(advise.status())) {
        continue;
      }
      return advise.status();
    }
    *now = ChargePageTransferAsync(*now, replica->peer);
    if (*advise) {
      peer.set_no_new_extents(true);
    }
    return *replica;
  }
  return NoSpaceError("no usable server for mirror replica");
}

Status MirroringBackend::JoinReplicaWrites(TimeNs* now, std::span<const uint8_t> data,
                                           MirrorEntry* entry, RpcFuture futures[2],
                                           const bool issued[2]) {
  // Both writes are already on the wire; charge the two transfers from the
  // same instant so their protocol processing overlaps, and finish at the
  // later completion. This is what makes a mirrored pageout cost less than
  // two serialized single-copy pageouts.
  const TimeNs start = *now;
  TimeNs done = *now;
  for (int c = 0; c < 2; ++c) {
    bool ok = false;
    if (issued[c]) {
      const size_t copy_peer = entry->copies[c].peer;
      ServerPeer& peer = cluster_.peer(copy_peer);
      auto advise = peer.JoinPageOut(std::move(futures[c]));
      if (!advise.ok() && ShouldRetry(copy_peer, advise.status())) {
        // Transient loss (dropped request or ack) on a live connection:
        // rewrite the same slot before abandoning it. The pageout is
        // idempotent, so a drop-reply that did apply is harmless.
        peer.mark_alive();
        TimeNs retry_now = start;
        ChargeBackoff(1, &retry_now);
        advise = ReliablePageOut(copy_peer, entry->copies[c].slot, data, &retry_now);
        done = std::max(done, retry_now);
      }
      if (advise.ok()) {
        done = std::max(done, ChargePageTransferAsync(start, copy_peer));
        if (*advise) {
          peer.set_no_new_extents(true);
        }
        ok = true;
      } else if (!IsRetryableError(advise.status())) {
        return advise.status();
      }
    }
    if (!ok) {
      // Repair serially: the replacement write cannot start before the
      // failure of the original is known.
      TimeNs repair = start;
      auto replica = WriteNewReplica(&repair, data, entry->copies[1 - c].peer);
      if (!replica.ok()) {
        return replica.status();
      }
      entry->copies[c] = *replica;
      done = std::max(done, repair);
    }
  }
  *now = done;
  return OkStatus();
}

Result<TimeNs> MirroringBackend::PageOut(TimeNs now, uint64_t page_id,
                                         std::span<const uint8_t> data) {
  if (data.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  ++stats_.pageouts;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageOut, page_id, &now);
  auto it = table_.find(page_id);
  if (it != table_.end()) {
    // Overwrite both replicas in place, issuing both writes before waiting
    // on either; replace any copy whose server died.
    MirrorEntry& entry = it->second;
    RpcFuture futures[2];
    bool issued[2] = {false, false};
    for (int c = 0; c < 2; ++c) {
      ServerPeer& peer = cluster_.peer(entry.copies[c].peer);
      if (peer.alive()) {
        futures[c] = peer.StartPageOut(entry.copies[c].slot, data);
        issued[c] = true;
      }
    }
    RMP_RETURN_IF_ERROR(JoinReplicaWrites(&now, data, &entry, futures, issued));
    stats_.paging_time += now - start;
    trace.set_ok();
    return now;
  }

  // Fresh page: reserve slots on two distinct servers up front, then write
  // both replicas in parallel. With a cluster map adopted, the page's
  // two-deep owner chain gets first refusal on each slot.
  size_t want[2] = {cluster_.size(), cluster_.size()};
  if (has_cluster_map()) {
    const auto chain = cluster_map().OwnerChain(cluster_map().GroupOf(page_id), 2);
    for (size_t c = 0; c < chain.size() && c < 2; ++c) {
      want[c] = chain[c];
    }
  }
  MirrorEntry entry;
  auto first = AcquireReplicaSlotPreferring(want[0], cluster_.size(), &now);
  if (!first.ok()) {
    return first.status();
  }
  entry.copies[0] = *first;
  auto second = AcquireReplicaSlotPreferring(want[1], first->peer, &now);
  if (!second.ok()) {
    return second.status();
  }
  entry.copies[1] = *second;
  RpcFuture futures[2];
  const bool issued[2] = {true, true};
  for (int c = 0; c < 2; ++c) {
    futures[c] = cluster_.peer(entry.copies[c].peer).StartPageOut(entry.copies[c].slot, data);
  }
  RMP_RETURN_IF_ERROR(JoinReplicaWrites(&now, data, &entry, futures, issued));
  table_.emplace(page_id, entry);
  stats_.paging_time += now - start;
  trace.set_ok();
  return now;
}

Result<TimeNs> MirroringBackend::PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  ++stats_.pageins;
  const TimeNs start = now;
  TraceScope trace(&tracer_, TraceOp::kPageIn, page_id, &now);
  for (int c = 0; c < 2; ++c) {
    const size_t copy_peer = it->second.copies[c].peer;
    ServerPeer& peer = cluster_.peer(copy_peer);
    if (!peer.alive() && !peer.transport().connected()) {
      continue;  // Known-dead server; go straight to the surviving copy.
    }
    const Status status = ReliablePageIn(copy_peer, it->second.copies[c].slot, out, &now);
    if (status.ok()) {
      if (c == 1) {
        // The primary was unreachable; the read was served by the mirror.
        ++stats_.failovers;
      }
      now = ChargePageTransfer(now, copy_peer);
      stats_.paging_time += now - start;
      trace.set_ok();
      return now;
    }
    if (!IsRetryableError(status)) {
      return status;
    }
  }
  // Both replicas are gone: the double failure exceeds what mirroring
  // tolerates, and no retry can bring the bytes back.
  return DataLossError("both replicas of page " + std::to_string(page_id) + " unreachable");
}

Result<uint64_t> MirroringBackend::ResilverChunk(size_t peer_index, uint64_t max_pages,
                                                 TimeNs* now) {
  if (max_pages == 0) {
    return InvalidArgumentError("resilver chunk must be at least one page");
  }
  std::vector<uint64_t> orphaned;
  for (const auto& [page_id, entry] : table_) {
    if (entry.copies[0].peer == peer_index || entry.copies[1].peer == peer_index) {
      orphaned.push_back(page_id);
      if (orphaned.size() >= max_pages) {
        break;
      }
    }
  }
  if (orphaned.empty()) {
    return 0;  // Every page is fully replicated again.
  }
  // Resilver in bulk: orphans cluster on the few surviving servers, so the
  // reads batch per survivor; the replacement writes then batch per
  // destination once each orphan has a reserved slot.
  std::vector<PageWant> wants;
  wants.reserve(orphaned.size());
  std::vector<int> dead_copy(orphaned.size());
  for (size_t i = 0; i < orphaned.size(); ++i) {
    const MirrorEntry& entry = table_.at(orphaned[i]);
    dead_copy[i] = entry.copies[0].peer == peer_index ? 0 : 1;
    const Replica& live = entry.copies[1 - dead_copy[i]];
    wants.push_back(PageWant{live.peer, live.slot});
  }
  std::vector<PageBuffer> pages;
  RMP_RETURN_IF_ERROR(BatchFetch(wants, &pages, now));

  std::map<size_t, std::vector<size_t>> by_dest;  // Destination peer -> orphan indices.
  std::vector<Replica> placed(orphaned.size());
  for (size_t i = 0; i < orphaned.size(); ++i) {
    auto replica = AcquireReplicaSlot(now, wants[i].peer);
    if (!replica.ok()) {
      return replica.status();
    }
    placed[i] = *replica;
    by_dest[replica->peer].push_back(i);
  }
  for (auto& [dest, indices] : by_dest) {
    for (size_t pos = 0; pos < indices.size(); pos += kMaxBatchPages) {
      const size_t n = std::min<size_t>(kMaxBatchPages, indices.size() - pos);
      std::vector<uint64_t> slots(n);
      std::vector<uint8_t> data(n * kPageSize);
      for (size_t j = 0; j < n; ++j) {
        const size_t i = indices[pos + j];
        slots[j] = placed[i].slot;
        std::copy(pages[i].span().begin(), pages[i].span().end(), data.begin() + j * kPageSize);
      }
      ServerPeer& peer = cluster_.peer(dest);
      auto advise = peer.PageOutBatchTo(slots, data);
      if (advise.ok()) {
        *now = ChargePageBatchTransferAsync(*now, n, dest);
        if (*advise) {
          peer.set_no_new_extents(true);
        }
        for (size_t j = 0; j < n; ++j) {
          const size_t i = indices[pos + j];
          table_.at(orphaned[i]).copies[dead_copy[i]] = placed[i];
        }
        continue;
      }
      if (!IsRetryableError(advise.status())) {
        return advise.status();
      }
      // The destination died mid-resilver; repair this chunk page by page.
      for (size_t j = 0; j < n; ++j) {
        const size_t i = indices[pos + j];
        auto replica = WriteNewReplica(now, pages[i].span(), wants[i].peer);
        if (!replica.ok()) {
          return replica.status();
        }
        table_.at(orphaned[i]).copies[dead_copy[i]] = *replica;
      }
    }
  }
  stats_.reconstructions += static_cast<int64_t>(orphaned.size());
  RMP_LOG(kInfo) << "mirroring: re-replicated " << orphaned.size() << " pages after crash of peer "
                 << peer_index;
  return orphaned.size();
}

Status MirroringBackend::Recover(size_t peer_index, TimeNs* now) {
  while (true) {
    auto done = ResilverChunk(peer_index, kMaxBatchPages, now);
    if (!done.ok()) {
      return done.status();
    }
    if (*done == 0) {
      return OkStatus();
    }
  }
}

Result<uint64_t> MirroringBackend::RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  return ResilverChunk(peer, max_pages, now);
}

Result<uint64_t> MirroringBackend::MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  ServerPeer& source = cluster_.peer(peer);
  if (!source.alive()) {
    return UnavailableError("cannot migrate replicas off a crashed server");
  }
  // Stop placements first so the drain converges (and so WriteNewReplica
  // below never re-targets the server being drained).
  if (!source.stopped()) {
    source.set_stopped(true);
  }
  std::vector<uint64_t> victims;
  for (const auto& [page_id, entry] : table_) {
    if (entry.copies[0].peer == peer || entry.copies[1].peer == peer) {
      victims.push_back(page_id);
      if (victims.size() >= max_pages) {
        break;
      }
    }
  }
  if (victims.empty()) {
    return 0;  // Drained: no replica lives on the peer any more.
  }
  PageBuffer buffer;
  for (const uint64_t page_id : victims) {
    MirrorEntry& entry = table_.at(page_id);
    const int c = entry.copies[0].peer == peer ? 0 : 1;
    const Replica old = entry.copies[c];
    // MIGRATE reads the replica and frees its slot in one round trip.
    Status read = source.MigrateRead(old.slot, buffer.span());
    if (read.ok()) {
      *now = ChargePageTransfer(*now, peer);
    } else {
      if (!IsRetryableError(read)) {
        return read;
      }
      // The overloaded server dropped the request; the mirror still has the
      // bytes, so migrate via the surviving copy and free best-effort.
      source.mark_alive();
      const Replica& live = entry.copies[1 - c];
      RMP_RETURN_IF_ERROR(ReliablePageIn(live.peer, live.slot, buffer.span(), now));
      *now = ChargePageTransfer(*now, live.peer);
      (void)source.FreeOn(old.slot, 1);
    }
    auto replica = WriteNewReplica(now, buffer.span(), entry.copies[1 - c].peer);
    if (!replica.ok()) {
      return replica.status();  // e.g. kNoSpace: nowhere left to drain to.
    }
    entry.copies[c] = *replica;
  }
  return victims.size();
}

Result<uint64_t> MirroringBackend::RebalanceStep(uint64_t max_pages, TimeNs* now) {
  if (!has_cluster_map() || max_pages == 0) {
    return 0;
  }
  const ClusterMap& map = cluster_map();
  struct Move {
    uint64_t page_id = 0;
    int copy = 0;    // Which of the two copies is the stray.
    size_t dest = 0; // The owner-chain peer missing a copy.
  };
  std::vector<Move> moves;
  for (const auto& [page_id, entry] : table_) {
    const auto chain = map.OwnerChain(map.GroupOf(page_id), 2);
    if (chain.size() < 2) {
      continue;  // Fewer than two active members: nowhere better to be.
    }
    const size_t p0 = entry.copies[0].peer;
    const size_t p1 = entry.copies[1].peer;
    const bool in0 = p0 == chain[0] || p0 == chain[1];
    const bool in1 = p1 == chain[0] || p1 == chain[1];
    if (in0 && in1 && p0 != p1) {
      continue;  // Both copies sit on the chain already.
    }
    // Move one stray copy per step; a page with both copies astray converges
    // over two steps. The destination is a chain peer not already holding a
    // copy — and it must be usable before the move is attempted.
    const int stray = in0 ? 1 : 0;
    const size_t keep = stray == 0 ? p1 : p0;
    const size_t dest = chain[0] != keep ? chain[0] : chain[1];
    if (dest == entry.copies[stray].peer || !cluster_.peer(dest).usable()) {
      continue;
    }
    moves.push_back({page_id, stray, dest});
    if (moves.size() >= max_pages) {
      break;
    }
  }
  uint64_t moved = 0;
  PageBuffer buffer;
  for (const Move& mv : moves) {
    MirrorEntry& entry = table_.at(mv.page_id);
    const Replica old = entry.copies[mv.copy];
    const Replica& other = entry.copies[1 - mv.copy];
    // Read from whichever copy answers (the page always keeps two copies
    // except for the stray being retired, so a crash mid-move loses nothing).
    Status read = ReliablePageIn(old.peer, old.slot, buffer.span(), now);
    if (read.ok()) {
      *now = ChargePageTransfer(*now, old.peer);
    } else {
      if (!IsRetryableError(read)) {
        return read;
      }
      Status mirror_read = ReliablePageIn(other.peer, other.slot, buffer.span(), now);
      if (!mirror_read.ok()) {
        continue;  // Neither copy reachable right now; a later step retries.
      }
      *now = ChargePageTransfer(*now, other.peer);
    }
    auto slot = TakeSlotOn(mv.dest, now);
    if (!slot.ok()) {
      continue;
    }
    auto advise = ReliablePageOut(mv.dest, *slot, buffer.span(), now);
    if (!advise.ok()) {
      cluster_.peer(mv.dest).ReturnSlot(*slot);
      continue;
    }
    *now = ChargePageTransferAsync(*now, mv.dest);
    if (*advise) {
      cluster_.peer(mv.dest).set_no_new_extents(true);
    }
    // The table flips only after the chain peer holds an acknowledged copy;
    // the stray's slot is then freed best-effort (a missed free costs the
    // old server capacity, never the client data).
    entry.copies[mv.copy] = Replica{mv.dest, *slot};
    (void)ReliableFree(old.peer, old.slot, 1, now);
    ++moved;
  }
  return moved;
}

uint64_t MirroringBackend::PagesOn(size_t peer) const {
  uint64_t count = 0;
  for (const auto& [page_id, entry] : table_) {
    count += (entry.copies[0].peer == peer ? 1 : 0) + (entry.copies[1].peer == peer ? 1 : 0);
  }
  return count;
}

int64_t MirroringBackend::fully_replicated_pages() const {
  int64_t n = 0;
  for (const auto& [page_id, entry] : table_) {
    const ServerPeer& a = cluster_.peer(entry.copies[0].peer);
    const ServerPeer& b = cluster_.peer(entry.copies[1].peer);
    if (a.alive() && b.alive() && entry.copies[0].peer != entry.copies[1].peer) {
      ++n;
    }
  }
  return n;
}

}  // namespace rmp
