// Shape regression guards: the qualitative results the paper's figures rest
// on, asserted as tests so a refactor that silently inverts an ordering
// fails CI instead of shipping a wrong EXPERIMENTS.md. (The full figures
// live in bench/; these use the cheapest workloads that exhibit each shape.)

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/model/extrapolation.h"
#include "src/model/run_simulator.h"
#include "src/net/ethernet_model.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

double RunPolicy(const Workload& workload, Policy policy, int data_servers,
                 uint32_t frames = 2304) {
  TestbedParams params;
  params.policy = policy;
  params.data_servers = data_servers;
  params.server_capacity_pages = 16384;
  params.network = std::make_shared<EthernetModel>();
  auto bed = Testbed::Create(params);
  EXPECT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = frames;
  auto run = SimulateRun(workload, &(*bed)->backend(), config);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return run.ok() ? run->etime_s : -1.0;
}

// Fig. 2's MVEC anomaly: on the pageout-only workload, the policy order is
// NO_REL < PARITY_LOGGING < DISK < MIRRORING — the disk BEATS mirroring.
TEST(ShapeRegressionTest, MvecAnomalyDiskBeatsMirroring) {
  const auto mvec = MakeMvec();
  const double no_rel = RunPolicy(*mvec, Policy::kNoReliability, 2);
  const double parity = RunPolicy(*mvec, Policy::kParityLogging, 4);
  const double mirror = RunPolicy(*mvec, Policy::kMirroring, 2);
  const double disk = RunPolicy(*mvec, Policy::kDisk, 0);
  EXPECT_LT(no_rel, parity);
  EXPECT_LT(parity, disk);
  EXPECT_LT(disk, mirror);
}

// Everywhere else the disk is last.
TEST(ShapeRegressionTest, FilterOrdering) {
  const auto filter = MakeFilter();
  const double no_rel = RunPolicy(*filter, Policy::kNoReliability, 2);
  const double parity = RunPolicy(*filter, Policy::kParityLogging, 4);
  const double mirror = RunPolicy(*filter, Policy::kMirroring, 2);
  const double disk = RunPolicy(*filter, Policy::kDisk, 0);
  EXPECT_LT(no_rel, parity);
  EXPECT_LT(parity, mirror);
  EXPECT_LT(mirror, disk);
}

// Fig. 3's cliff: below the memory size no paging, above it completion
// rises monotonically and the disk's rise is steeper.
TEST(ShapeRegressionTest, FftCliffAndDiskGap) {
  const double pl_17 = RunPolicy(*MakeFft(17.0), Policy::kParityLogging, 4);
  const double pl_20 = RunPolicy(*MakeFft(20.0), Policy::kParityLogging, 4);
  const double pl_24 = RunPolicy(*MakeFft(24.0), Policy::kParityLogging, 4);
  const double disk_20 = RunPolicy(*MakeFft(20.0), Policy::kDisk, 0);
  const double disk_24 = RunPolicy(*MakeFft(24.0), Policy::kDisk, 0);
  EXPECT_LT(pl_17, pl_20);
  EXPECT_LT(pl_20, pl_24);
  EXPECT_GT(disk_20, pl_20);
  // The disk's penalty grows with the paging volume.
  EXPECT_GT(disk_24 - pl_24, disk_20 - pl_20);
}

// Fig. 4: the extrapolated ETHERNET*10 must land between ETHERNET and
// ALL_MEMORY, within ~25% of the lower bound (paper: ~20% above it).
TEST(ShapeRegressionTest, NetworkScalingBrackets) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 16384;
  params.network = std::make_shared<EthernetModel>();
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = 2304;
  auto run = SimulateRun(*MakeFft(24.0), &(*bed)->backend(), config);
  ASSERT_TRUE(run.ok());
  const TimeDecomposition d = Decompose(*run);
  const double x10 = ExpectedElapsedSeconds(d, 10.0);
  const double all_memory = AllMemorySeconds(d);
  EXPECT_LT(x10, run->etime_s);
  EXPECT_GT(x10, all_memory);
  EXPECT_LT(x10 / all_memory, 1.25);
}

// §4.7: on a 10x network, parity logging must beat write-through (which is
// pinned to the disk's pageout bandwidth).
TEST(ShapeRegressionTest, WriteThroughCrossoverOnFastNetwork) {
  const auto gauss = MakeGauss();
  auto fast = std::make_shared<ScaledBandwidthModel>(std::make_shared<EthernetModel>(), 10.0);
  auto run_fast = [&](Policy policy, int servers) {
    TestbedParams params;
    params.policy = policy;
    params.data_servers = servers;
    params.server_capacity_pages = 16384;
    params.network = fast;
    auto bed = Testbed::Create(params);
    EXPECT_TRUE(bed.ok());
    RunConfig config;
    config.physical_frames = 2304;
    auto run = SimulateRun(*gauss, &(*bed)->backend(), config);
    EXPECT_TRUE(run.ok());
    return run.ok() ? run->etime_s : -1.0;
  };
  const double parity = run_fast(Policy::kParityLogging, 4);
  const double write_through = run_fast(Policy::kWriteThrough, 2);
  EXPECT_LT(parity, write_through * 0.8);
}

}  // namespace
}  // namespace rmp
