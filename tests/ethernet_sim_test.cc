#include "src/net/ethernet_sim.h"

#include <gtest/gtest.h>

#include "src/net/ethernet_model.h"

namespace rmp {
namespace {

TEST(EthernetSimTest, SingleStationGetsFullChannel) {
  EthernetSimulator sim;
  const auto result = sim.RunSaturated(1, Seconds(5), 1);
  EXPECT_EQ(result.total_collisions, 0);
  EXPECT_GT(result.channel_efficiency, 0.99);
  EXPECT_NEAR(result.total_throughput_mbps, 10.0, 0.2);
}

TEST(EthernetSimTest, PerStationGoodputCollapsesWithContention) {
  EthernetSimulator sim;
  double last_per_station = 11.0;
  for (int stations : {1, 2, 4, 8, 16}) {
    const auto result = sim.RunSaturated(stations, Seconds(5), 42);
    const double per_station = result.total_throughput_mbps / stations;
    EXPECT_LT(per_station, last_per_station);
    last_per_station = per_station;
  }
  EXPECT_LT(last_per_station, 1.0);  // 16 stations: under a tenth of alone.
}

TEST(EthernetSimTest, CollisionsGrowWithStations) {
  EthernetSimulator sim;
  const auto two = sim.RunSaturated(2, Seconds(5), 7);
  const auto eight = sim.RunSaturated(8, Seconds(5), 7);
  EXPECT_GT(eight.total_collisions, two.total_collisions);
}

TEST(EthernetSimTest, MatchesAnalyticEfficiencyForFullFrames) {
  EthernetSimulator sim;
  EthernetModel model;
  for (int stations : {2, 4, 8}) {
    const auto result = sim.RunSaturated(stations, Seconds(10), 0x77 + stations);
    const double analytic = model.ContentionEfficiency(stations);
    EXPECT_NEAR(result.channel_efficiency, analytic, 0.07)
        << "stations=" << stations;
  }
}

TEST(EthernetSimTest, PoissonThroughputTracksOfferedLoadBelowSaturation) {
  EthernetSimulator sim;
  for (double load : {0.2, 0.5, 0.8}) {
    const auto result = sim.RunPoisson(6, load, Seconds(10), 0x99);
    EXPECT_NEAR(result.total_throughput_mbps, load * 10.0, 0.7) << "load=" << load;
  }
}

TEST(EthernetSimTest, PoissonSaturatesNearCapacity) {
  EthernetSimulator sim;
  const auto result = sim.RunPoisson(6, 3.0, Seconds(10), 0x9a);
  EXPECT_GT(result.total_throughput_mbps, 8.5);
  EXPECT_LE(result.total_throughput_mbps, 10.01);
}

TEST(EthernetSimTest, DeterministicForSeed) {
  EthernetSimulator sim;
  const auto a = sim.RunSaturated(4, Seconds(2), 5);
  const auto b = sim.RunSaturated(4, Seconds(2), 5);
  EXPECT_EQ(a.total_frames_delivered, b.total_frames_delivered);
  EXPECT_EQ(a.total_collisions, b.total_collisions);
}

TEST(EthernetSimTest, FairnessAcrossStationsLongRun) {
  EthernetSimulator sim;
  const auto result = sim.RunSaturated(4, Seconds(30), 13);
  int64_t min_frames = result.stations[0].frames_delivered;
  int64_t max_frames = min_frames;
  for (const auto& st : result.stations) {
    min_frames = std::min(min_frames, st.frames_delivered);
    max_frames = std::max(max_frames, st.frames_delivered);
  }
  // BEB is unfair short-term (capture effect) but roughly fair over 30 s.
  EXPECT_GT(static_cast<double>(min_frames) / static_cast<double>(max_frames), 0.5);
}

}  // namespace
}  // namespace rmp
