// Data-mode kernels: real computations running *through* the paged VM, so
// their results prove that page contents survive eviction, remote storage,
// parity reconstruction and recovery bit-exactly. Used by integration tests
// and the crash-recovery example; the figure benches use the cheaper
// access-pattern generators instead.

#ifndef SRC_WORKLOADS_DATA_KERNELS_H_
#define SRC_WORKLOADS_DATA_KERNELS_H_

#include <cstdint>

#include "src/util/status.h"
#include "src/vm/vm_array.h"

namespace rmp {

// Fills `array` with a deterministic pseudo-random permutation-ish stream.
Status FillRandom(VmArray<uint64_t>* array, TimeNs* now, uint64_t seed);

// In-place iterative quicksort (Hoare partition) over the VM-resident array.
Status QuicksortVm(VmArray<uint64_t>* array, TimeNs* now);

// Verifies ascending order; kFailedPrecondition names the first violation.
Status VerifySorted(const VmArray<uint64_t>& array, TimeNs* now);

// Sum of all elements (order-independent integrity probe).
Result<uint64_t> ChecksumVm(const VmArray<uint64_t>& array, TimeNs* now);

// Two-pass separable moving-sum filter with window `radius` (the FILTER
// structure: input image + output image): pass 1 computes prefix sums in
// place in `src`, pass 2 writes windowed sums into `dst`. Returns the
// checksum of `dst` for comparison against the in-memory reference.
Result<uint64_t> TwoPassFilterVm(VmArray<uint64_t>* src, VmArray<uint64_t>* dst, TimeNs* now,
                                 int radius);

// In-memory reference of TwoPassFilterVm for verification.
uint64_t TwoPassFilterReference(uint64_t count, uint64_t seed, int radius);

// Real Gaussian elimination with partial pivoting over an n x n system
// living in the VM (the GAUSS structure). The system is generated from
// `seed` with a known solution of all-ones; returns the max-abs error of
// the recovered solution (should be ~1e-9 for well-conditioned systems).
Result<double> GaussSolveVm(PagedVm* vm, TimeNs* now, uint64_t base, uint64_t n, uint64_t seed);

// Real matrix-vector product y = A x over VM-resident data (the MVEC
// structure): A is generated row by row from `seed`, consumed immediately.
// Returns the checksum of y for comparison with MatrixVectorReference.
Result<uint64_t> MatrixVectorVm(PagedVm* vm, TimeNs* now, uint64_t base, uint64_t n,
                                uint64_t seed);
uint64_t MatrixVectorReference(uint64_t n, uint64_t seed);

}  // namespace rmp

#endif  // SRC_WORKLOADS_DATA_KERNELS_H_
