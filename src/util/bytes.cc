#include "src/util/bytes.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RMP_HAVE_X86_SIMD 1
#include <immintrin.h>
#else
#define RMP_HAVE_X86_SIMD 0
#endif

namespace rmp {
namespace {

// SplitMix64 step; used to synthesize verifiable page contents.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// GCC's auto-vectorizer rewrites the word loop below with SSE/AVX at -O2,
// which would make the "scalar" reference silently SIMD: differential tests
// would compare two vector paths and the bench baseline would not measure
// what a portable word loop costs. Pin it to scalar codegen.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void XorBytesScalarImpl(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  // Word-at-a-time main loop; memcpy keeps it legal for unaligned buffers.
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t a;
    uint64_t b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

#if RMP_HAVE_X86_SIMD

// The target attribute lets these bodies use wide intrinsics without
// compiling the whole translation unit with -mavx2; the dispatcher only
// calls them after the CPUID probe says the unit exists.
__attribute__((target("avx2"))) void XorBytesAvx2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    const __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), _mm256_xor_si256(a1, b1));
  }
  if (i + 32 <= n) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(a, b));
    i += 32;
  }
  XorBytesScalarImpl(dst + i, src + i, n - i);
}

void XorBytesSse2(uint8_t* dst, const uint8_t* src, size_t n) {
  // SSE2 is baseline on x86-64; no target attribute needed.
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), _mm_xor_si128(a1, b1));
  }
  if (i + 16 <= n) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(a, b));
    i += 16;
  }
  XorBytesScalarImpl(dst + i, src + i, n - i);
}

#endif  // RMP_HAVE_X86_SIMD

using XorFn = void (*)(uint8_t*, const uint8_t*, size_t);

struct XorImpl {
  XorFn fn;
  std::string_view name;
};

XorImpl PickXorImpl() {
#if RMP_HAVE_X86_SIMD
  if (__builtin_cpu_supports("avx2")) {
    return {XorBytesAvx2, "avx2"};
  }
  return {XorBytesSse2, "sse2"};
#else
  return {XorBytesScalarImpl, "scalar"};
#endif
}

const XorImpl& DispatchedXor() {
  static const XorImpl impl = PickXorImpl();
  return impl;
}

}  // namespace

void PageBuffer::Assign(std::span<const uint8_t> bytes) {
  const size_t n = std::min(bytes.size(), data_.size());
  std::memcpy(data_.data(), bytes.data(), n);
  if (n < data_.size()) {
    std::memset(data_.data() + n, 0, data_.size() - n);
  }
}

void PageBuffer::XorWith(std::span<const uint8_t> other) {
  assert(other.size() == data_.size());
  XorBytes(data_.data(), other.data(), data_.size());
}

void PageBuffer::Clear() { std::memset(data_.data(), 0, data_.size()); }

bool PageBuffer::IsZero() const { return IsZeroBytes(data_.data(), data_.size()); }

void XorBytes(uint8_t* dst, const uint8_t* src, size_t n) { DispatchedXor().fn(dst, src, n); }

void XorBytesScalar(uint8_t* dst, const uint8_t* src, size_t n) {
  XorBytesScalarImpl(dst, src, n);
}

std::string_view XorBytesImplName() { return DispatchedXor().name; }

bool IsZeroBytes(const uint8_t* p, size_t n) {
  size_t i = 0;
  // OR-accumulate a cache line at a time, checking between lines so a dirty
  // page (the common reclaim-probe answer) exits after its first line.
  for (; i + 64 <= n; i += 64) {
    uint64_t acc = 0;
    for (size_t w = 0; w < 64; w += sizeof(uint64_t)) {
      uint64_t v;
      std::memcpy(&v, p + i + w, sizeof(v));
      acc |= v;
    }
    if (acc != 0) {
      return false;
    }
  }
  for (; i + sizeof(uint64_t) <= n; i += sizeof(uint64_t)) {
    uint64_t v;
    std::memcpy(&v, p + i, sizeof(v));
    if (v != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if (p[i] != 0) {
      return false;
    }
  }
  return true;
}

void FillPattern(std::span<uint8_t> page, uint64_t seed) {
  uint64_t state = seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= page.size(); i += sizeof(uint64_t)) {
    const uint64_t word = Mix64(state + i);
    std::memcpy(page.data() + i, &word, sizeof(word));
  }
  for (; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(Mix64(state + i));
  }
}

bool CheckPattern(std::span<const uint8_t> page, uint64_t seed) {
  uint64_t state = seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= page.size(); i += sizeof(uint64_t)) {
    const uint64_t expected = Mix64(state + i);
    uint64_t actual;
    std::memcpy(&actual, page.data() + i, sizeof(actual));
    if (actual != expected) {
      return false;
    }
  }
  for (; i < page.size(); ++i) {
    if (page[i] != static_cast<uint8_t>(Mix64(state + i))) {
      return false;
    }
  }
  return true;
}

}  // namespace rmp
