#include "src/server/memory_server.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

MemoryServerParams SmallServer(uint64_t capacity = 64) {
  MemoryServerParams params;
  params.name = "test-server";
  params.capacity_pages = capacity;
  return params;
}

TEST(MemoryServerTest, AllocateGrantsDistinctRuns) {
  MemoryServer server(SmallServer());
  auto a = server.Allocate(8);
  auto b = server.Allocate(8);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(server.free_pages(), 64u - 16u);
}

TEST(MemoryServerTest, DeniesBeyondCapacity) {
  MemoryServer server(SmallServer(10));
  EXPECT_TRUE(server.Allocate(10).ok());
  auto denied = server.Allocate(1);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), ErrorCode::kNoSpace);
  EXPECT_EQ(server.stats().denials, 1);
}

TEST(MemoryServerTest, ZeroPageAllocationRejected) {
  MemoryServer server(SmallServer());
  EXPECT_EQ(server.Allocate(0).status().code(), ErrorCode::kInvalidArgument);
}

TEST(MemoryServerTest, StoreAndLoadRoundTrip) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(1);
  PageBuffer page;
  FillPattern(page.span(), 5);
  ASSERT_TRUE(server.Store(*slot, page.span()).ok());
  auto loaded = server.Load(*slot);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, page);
}

TEST(MemoryServerTest, LoadOfEmptySlotIsNotFound) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(1);
  EXPECT_EQ(server.Load(*slot).status().code(), ErrorCode::kNotFound);
}

TEST(MemoryServerTest, StoreToUnallocatedSlotRejected) {
  MemoryServer server(SmallServer());
  PageBuffer page;
  EXPECT_EQ(server.Store(1000, page.span()).code(), ErrorCode::kInvalidArgument);
}

TEST(MemoryServerTest, StoreWrongSizeRejected) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(1);
  std::vector<uint8_t> tiny(16, 0);
  EXPECT_EQ(server.Store(*slot, std::span<const uint8_t>(tiny)).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MemoryServerTest, FreeReleasesCapacityAndPages) {
  MemoryServer server(SmallServer(8));
  auto slot = server.Allocate(8);
  PageBuffer page;
  FillPattern(page.span(), 1);
  ASSERT_TRUE(server.Store(*slot, page.span()).ok());
  ASSERT_TRUE(server.Free(*slot, 8).ok());
  EXPECT_EQ(server.free_pages(), 8u);
  EXPECT_FALSE(server.Holds(*slot));
  // Freed slots are reused.
  auto again = server.Allocate(8);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *slot);
}

TEST(MemoryServerTest, AdviseStopNearCapacity) {
  MemoryServerParams params = SmallServer(100);
  params.advise_stop_fraction = 0.9;
  MemoryServer server(params);
  EXPECT_FALSE(server.ShouldAdviseStop());
  ASSERT_TRUE(server.Allocate(90).ok());
  EXPECT_TRUE(server.ShouldAdviseStop());
}

TEST(MemoryServerTest, NativeLoadShrinksCapacity) {
  MemoryServer server(SmallServer(100));
  EXPECT_EQ(server.capacity_pages(), 100u);
  server.SetNativeLoad(0.5);
  EXPECT_EQ(server.capacity_pages(), 50u);
  server.SetNativeLoad(1.0);
  EXPECT_EQ(server.capacity_pages(), 0u);
  EXPECT_TRUE(server.ShouldAdviseStop());
}

TEST(MemoryServerTest, CrashDropsEverything) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(4);
  PageBuffer page;
  FillPattern(page.span(), 2);
  ASSERT_TRUE(server.Store(*slot, page.span()).ok());
  server.Crash();
  EXPECT_TRUE(server.crashed());
  EXPECT_EQ(server.live_pages(), 0u);
  EXPECT_EQ(server.Load(*slot).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server.Store(*slot, page.span()).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(server.Allocate(1).status().code(), ErrorCode::kUnavailable);
}

TEST(MemoryServerTest, RestartComesBackEmpty) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(4);
  server.Crash();
  server.Restart();
  EXPECT_FALSE(server.crashed());
  EXPECT_EQ(server.live_pages(), 0u);
  EXPECT_EQ(server.free_pages(), 64u);  // All capacity reclaimed.
  (void)slot;
}

TEST(MemoryServerTest, DeltaStoreReturnsOldXorNew) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(1);
  PageBuffer v1;
  PageBuffer v2;
  FillPattern(v1.span(), 10);
  FillPattern(v2.span(), 11);
  // First store: old is the zero page, so the delta equals v1.
  auto delta1 = server.DeltaStore(*slot, v1.span());
  ASSERT_TRUE(delta1.ok());
  EXPECT_EQ(*delta1, v1);
  // Second store: delta = v1 ^ v2.
  auto delta2 = server.DeltaStore(*slot, v2.span());
  ASSERT_TRUE(delta2.ok());
  PageBuffer expected(v1.span());
  expected.XorWith(v2.span());
  EXPECT_EQ(*delta2, expected);
  EXPECT_EQ(*server.Load(*slot), v2);
}

TEST(MemoryServerTest, XorMergeFoldsIntoStored) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(1);
  PageBuffer a;
  PageBuffer b;
  FillPattern(a.span(), 20);
  FillPattern(b.span(), 21);
  ASSERT_TRUE(server.XorMerge(*slot, a.span()).ok());  // Zero ^ a = a.
  ASSERT_TRUE(server.XorMerge(*slot, b.span()).ok());
  PageBuffer expected(a.span());
  expected.XorWith(b.span());
  EXPECT_EQ(*server.Load(*slot), expected);
}

TEST(MemoryServerTest, StoreBatchAndLoadBatchRoundTrip) {
  MemoryServer server(SmallServer());
  auto base = server.Allocate(4);
  ASSERT_TRUE(base.ok());
  std::vector<uint64_t> slots;
  std::vector<uint8_t> pages;
  for (uint64_t i = 0; i < 4; ++i) {
    slots.push_back(*base + i);
    PageBuffer page;
    FillPattern(page.span(), 70 + i);
    pages.insert(pages.end(), page.span().begin(), page.span().end());
  }
  uint64_t stored = 0;
  ASSERT_TRUE(server.StoreBatch(slots, pages, &stored).ok());
  EXPECT_EQ(stored, 4u);
  EXPECT_EQ(server.stats().pageouts_served, 4);

  std::vector<uint8_t> loaded;
  ASSERT_TRUE(server.LoadBatch(slots, &loaded).ok());
  EXPECT_EQ(loaded, pages);
}

TEST(MemoryServerTest, StoreBatchStopsAtFirstBadSlot) {
  MemoryServer server(SmallServer());
  auto base = server.Allocate(2);
  ASSERT_TRUE(base.ok());
  const std::vector<uint64_t> slots = {*base, 1000, *base + 1};
  std::vector<uint8_t> pages(3 * kPageSize, 0xcd);
  uint64_t stored = 0;
  const Status status = server.StoreBatch(slots, pages, &stored);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(stored, 1u);  // Also the failing index.
  EXPECT_TRUE(server.Holds(*base));
  EXPECT_FALSE(server.Holds(*base + 1));
}

TEST(MemoryServerTest, SingleShardConfigKeepsSemantics) {
  MemoryServerParams params = SmallServer();
  params.store_shards = 1;
  MemoryServer server(params);
  EXPECT_EQ(server.shard_count(), 1u);
  auto slot = server.Allocate(2);
  PageBuffer page;
  FillPattern(page.span(), 9);
  ASSERT_TRUE(server.Store(*slot, page.span()).ok());
  EXPECT_EQ(*server.Load(*slot), page);
  ASSERT_TRUE(server.Free(*slot, 2).ok());
  EXPECT_FALSE(server.Holds(*slot));
}

TEST(MemoryServerTest, FramesRecycledAcrossFreeAndRealloc) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(8);
  PageBuffer page;
  for (uint64_t i = 0; i < 8; ++i) {
    FillPattern(page.span(), i);
    ASSERT_TRUE(server.Store(*slot + i, page.span()).ok());
  }
  ASSERT_TRUE(server.Free(*slot, 8).ok());
  // The recycled frames must not leak their old bytes through the
  // absent-slot-reads-as-zero parity primitives.
  auto again = server.Allocate(8);
  ASSERT_TRUE(again.ok());
  PageBuffer delta;
  FillPattern(delta.span(), 99);
  ASSERT_TRUE(server.XorMerge(*again, delta.span()).ok());
  EXPECT_EQ(*server.Load(*again), delta);  // zero ^ delta, not stale ^ delta.
}

TEST(MemoryServerTest, LiveSlotsSorted) {
  MemoryServer server(SmallServer());
  auto slot = server.Allocate(5);
  PageBuffer page;
  ASSERT_TRUE(server.Store(*slot + 3, page.span()).ok());
  ASSERT_TRUE(server.Store(*slot + 1, page.span()).ok());
  const auto slots = server.LiveSlots();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], *slot + 1);
  EXPECT_EQ(slots[1], *slot + 3);
}

// Wire-protocol dispatch.
TEST(MemoryServerHandleTest, AllocAndDenial) {
  MemoryServer server(SmallServer(4));
  Message reply = server.Handle(MakeAllocRequest(1, 4));
  EXPECT_EQ(reply.type, MessageType::kAllocReply);
  EXPECT_EQ(reply.status_code(), ErrorCode::kOk);
  EXPECT_EQ(reply.count, 4u);
  reply = server.Handle(MakeAllocRequest(2, 1));
  EXPECT_EQ(reply.status_code(), ErrorCode::kNoSpace);
}

TEST(MemoryServerHandleTest, PageOutInRoundTrip) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 1));
  PageBuffer page;
  FillPattern(page.span(), 30);
  const Message ack = server.Handle(MakePageOut(2, alloc.slot, page.span()));
  EXPECT_EQ(ack.type, MessageType::kPageOutAck);
  EXPECT_EQ(ack.status_code(), ErrorCode::kOk);
  const Message reply = server.Handle(MakePageIn(3, alloc.slot));
  EXPECT_EQ(reply.type, MessageType::kPageInReply);
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(reply.payload), 30));
}

TEST(MemoryServerHandleTest, LoadReport) {
  MemoryServer server(SmallServer(100));
  const Message report = server.Handle(MakeLoadQuery(1));
  EXPECT_EQ(report.type, MessageType::kLoadReport);
  EXPECT_EQ(report.count, 100u);
  EXPECT_EQ(report.aux, 100u);
  EXPECT_FALSE(report.advise_stop());
}

TEST(MemoryServerHandleTest, AdviseStopPiggybackedOnAck) {
  MemoryServerParams params = SmallServer(10);
  params.advise_stop_fraction = 0.5;
  MemoryServer server(params);
  const Message alloc = server.Handle(MakeAllocRequest(1, 6));
  PageBuffer page;
  const Message ack = server.Handle(MakePageOut(2, alloc.slot, page.span()));
  EXPECT_TRUE(ack.advise_stop());
}

TEST(MemoryServerHandleTest, UnknownRequestYieldsErrorReply) {
  MemoryServer server(SmallServer());
  Message bogus;
  bogus.type = MessageType::kAllocReply;  // A reply is not a valid request.
  bogus.request_id = 9;
  const Message reply = server.Handle(bogus);
  EXPECT_EQ(reply.type, MessageType::kErrorReply);
  EXPECT_EQ(reply.status_code(), ErrorCode::kProtocol);
  EXPECT_EQ(reply.request_id, 9u);
}

TEST(MemoryServerHandleTest, PageOutBatchRoundTrip) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 3));
  std::vector<uint64_t> slots;
  std::vector<uint8_t> pages;
  for (uint64_t i = 0; i < 3; ++i) {
    slots.push_back(alloc.slot + i);
    PageBuffer page;
    FillPattern(page.span(), 50 + i);
    pages.insert(pages.end(), page.span().begin(), page.span().end());
  }
  const Message ack = server.Handle(MakePageOutBatch(2, slots, pages));
  EXPECT_EQ(ack.type, MessageType::kPageOutBatchAck);
  EXPECT_EQ(ack.status_code(), ErrorCode::kOk);
  EXPECT_EQ(ack.count, 3u);

  const Message reply = server.Handle(MakePageInBatch(3, slots));
  EXPECT_EQ(reply.type, MessageType::kPageInBatchReply);
  ASSERT_EQ(reply.status_code(), ErrorCode::kOk);
  ASSERT_TRUE(ValidateBatch(reply).ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(CheckPattern(BatchPage(reply, i), 50 + i)) << i;
  }
}

TEST(MemoryServerHandleTest, PageOutBatchReportsFailingIndex) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 1));
  const std::vector<uint64_t> slots = {alloc.slot, 5000};
  std::vector<uint8_t> pages(2 * kPageSize, 0xee);
  const Message ack = server.Handle(MakePageOutBatch(2, slots, pages));
  EXPECT_EQ(ack.type, MessageType::kPageOutBatchAck);
  EXPECT_EQ(ack.status_code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(ack.count, 1u);  // One page made it in.
  EXPECT_EQ(ack.aux, 1u);    // Entry 1 failed.
}

TEST(MemoryServerHandleTest, PageInBatchMissReportsFailingIndex) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 2));
  PageBuffer page;
  server.Handle(MakePageOut(2, alloc.slot, page.span()));
  const std::vector<uint64_t> slots = {alloc.slot, alloc.slot + 1};  // +1 never stored.
  const Message reply = server.Handle(MakePageInBatch(3, slots));
  EXPECT_EQ(reply.type, MessageType::kPageInBatchReply);
  EXPECT_EQ(reply.status_code(), ErrorCode::kNotFound);
  EXPECT_EQ(reply.aux, 1u);
  EXPECT_TRUE(reply.payload.empty());
}

TEST(MemoryServerHandleTest, MalformedBatchRejected) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 1));
  const std::vector<uint64_t> slots = {alloc.slot};
  Message bad = MakePageOutBatch(2, slots, std::vector<uint8_t>(kPageSize, 0));
  bad.count = 2;  // Lies about the entry count.
  const Message reply = server.Handle(bad);
  EXPECT_EQ(reply.type, MessageType::kErrorReply);
  EXPECT_EQ(reply.status_code(), ErrorCode::kProtocol);
}

TEST(MemoryServerHandleTest, StatsCount) {
  MemoryServer server(SmallServer());
  const Message alloc = server.Handle(MakeAllocRequest(1, 2));
  PageBuffer page;
  server.Handle(MakePageOut(2, alloc.slot, page.span()));
  server.Handle(MakePageIn(3, alloc.slot));
  EXPECT_EQ(server.stats().pageouts_served, 1);
  EXPECT_EQ(server.stats().pageins_served, 1);
  EXPECT_EQ(server.stats().allocations, 1);
  EXPECT_EQ(server.stats().bytes_stored, kPageSize);
}

}  // namespace
}  // namespace rmp
