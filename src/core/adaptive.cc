#include "src/core/adaptive.h"

#include <numeric>

#include "src/util/logging.h"

namespace rmp {

void AdaptiveBackend::RecordSample(DurationNs service) {
  samples_.push_back(service);
  while (static_cast<int>(samples_.size()) > params_.window) {
    samples_.pop_front();
  }
}

bool AdaptiveBackend::AverageAboveThreshold() const {
  if (static_cast<int>(samples_.size()) < params_.window / 2) {
    return false;  // Not enough evidence yet.
  }
  const DurationNs sum = std::accumulate(samples_.begin(), samples_.end(), DurationNs{0});
  return sum / static_cast<DurationNs>(samples_.size()) > params_.latency_threshold;
}

double AdaptiveBackend::recent_remote_latency_ms() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const DurationNs sum = std::accumulate(samples_.begin(), samples_.end(), DurationNs{0});
  return ToMillis(sum / static_cast<DurationNs>(samples_.size()));
}

Result<TimeNs> AdaptiveBackend::PageOut(TimeNs now, uint64_t page_id,
                                        std::span<const uint8_t> data) {
  ++merged_stats_.pageouts;
  const bool probe_due = !using_network_ && now - last_probe_ >= params_.reprobe_interval;
  if (using_network_ || probe_due) {
    last_probe_ = now;
    auto done = remote_->PageOut(now, page_id, data);
    if (done.ok()) {
      RecordSample(*done - now);
      on_disk_[page_id] = false;
      if (using_network_ && AverageAboveThreshold()) {
        using_network_ = false;
        ++switches_to_disk_;
        samples_.clear();
        RMP_LOG(kInfo) << "adaptive: network congested ("
                       << ToMillis(*done - now) << " ms/request), routing pageouts to disk";
      } else if (!using_network_ && !AverageAboveThreshold() &&
                 static_cast<int>(samples_.size()) >= params_.window / 2) {
        using_network_ = true;
        ++switches_to_network_;
        RMP_LOG(kInfo) << "adaptive: network recovered, routing pageouts remotely";
      }
      return done;
    }
    // Remote refused (full / dead): fall through to the disk.
  }
  auto done = disk_->PageOut(now, page_id, data);
  if (done.ok()) {
    on_disk_[page_id] = true;
  }
  return done;
}

Result<TimeNs> AdaptiveBackend::PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) {
  ++merged_stats_.pageins;
  auto it = on_disk_.find(page_id);
  if (it == on_disk_.end()) {
    return NotFoundError("page " + std::to_string(page_id) + " was never paged out");
  }
  if (it->second) {
    return disk_->PageIn(now, page_id, out);
  }
  auto done = remote_->PageIn(now, page_id, out);
  if (done.ok()) {
    RecordSample(*done - now);
  }
  return done;
}

const BackendStats& AdaptiveBackend::stats() const {
  merged_stats_.page_transfers = remote_->stats().page_transfers;
  merged_stats_.disk_transfers = disk_->stats().disk_transfers;
  merged_stats_.protocol_time = remote_->stats().protocol_time;
  merged_stats_.wire_time = remote_->stats().wire_time;
  merged_stats_.disk_time = disk_->stats().disk_time;
  merged_stats_.paging_time = remote_->stats().paging_time + disk_->stats().paging_time;
  return merged_stats_;
}

}  // namespace rmp
