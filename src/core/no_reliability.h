// NO RELIABILITY policy: each page lives on exactly one remote memory server.
// Fastest configuration in the paper (one transfer per pageout, one per
// pagein) but a server crash loses pages irrecoverably — the client
// application dies, which is exactly what §2.2 sets out to fix.
//
// This backend also carries the §2.1 mechanisms shared conceptually by all
// policies: when a server denies an allocation or advises stop, the client
// stops using it and migrates the pages it stored there to another server
// with free memory, or to the local disk when the cluster is full; pages
// parked on the local disk are replicated back to a server when memory
// frees up again.

#ifndef SRC_CORE_NO_RELIABILITY_H_
#define SRC_CORE_NO_RELIABILITY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/core/remote_pager.h"
#include "src/disk/disk_backend.h"

namespace rmp {

class NoReliabilityBackend final : public RemotePagerBase {
 public:
  // `local_disk` may be null when no fallback disk is configured (a cluster
  // denial then surfaces as NO_SPACE).
  NoReliabilityBackend(Cluster cluster, std::shared_ptr<NetworkFabric> fabric,
                       const RemotePagerParams& params,
                       std::unique_ptr<DiskBackend> local_disk = nullptr)
      : RemotePagerBase(std::move(cluster), std::move(fabric), params),
        local_disk_(std::move(local_disk)) {}

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  // Vectored pageout: runs of fresh pages ride PAGEOUT_BATCH frames (one
  // header and one round trip per batch); known or disk-bound pages fall
  // back to the single-page path.
  Result<TimeNs> PageOutBatch(TimeNs now, std::span<const uint64_t> page_ids,
                              std::span<const uint8_t> data) override;

  std::string Name() const override { return "NO_RELIABILITY"; }

  // Moves every page held by `peer_index` to other servers (or disk).
  // Invoked automatically on ADVISE_STOP; public for tests and tools.
  // Implemented as a loop over MigrateStep.
  Status MigrateFrom(size_t peer_index, TimeNs* now);

  // Overload drain quantum for the RepairCoordinator: moves up to
  // `max_pages` pages off the (live) peer using MIGRATE round trips;
  // 0 = the peer no longer holds any page.
  Result<uint64_t> MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) override;

  // Elastic-membership rebalance quantum (DESIGN.md §16): moves pages whose
  // holder disagrees with the adopted map onto their map owner, read-then-
  // write-then-free so the page always has a live copy. 0 = placement
  // matches the map (or nothing actionable right now).
  Result<uint64_t> RebalanceStep(uint64_t max_pages, TimeNs* now) override;

  uint64_t PagesOn(size_t peer) const override;

  // Replicates disk-parked pages back to servers with free memory (§2.1:
  // "the client periodically checks the memory load of all possible remote
  // memory servers"). Returns the number of pages moved.
  Result<int> DrainDiskToServers(TimeNs* now, int max_pages);

  int64_t pages_on_disk() const { return pages_on_disk_; }

 private:
  struct Location {
    bool on_disk = false;
    size_t peer = 0;
    uint64_t slot = 0;
  };

  // Places a fresh or relocating page on some usable server, allocating a
  // slot; falls back to disk. Performs the actual transfer.
  Result<TimeNs> PlaceAndSend(TimeNs now, uint64_t page_id, std::span<const uint8_t> data);

  // Places a run of fresh pages with batched writes: takes as many slots as
  // each picked peer will grant and ships them in one PAGEOUT_BATCH frame;
  // pages no server takes ride the single-page path (and its disk fallback).
  Result<TimeNs> PlaceBatch(TimeNs now, std::span<const uint64_t> page_ids,
                            std::span<const uint8_t> data);

  // Map-aware PlaceBatch: buckets the run by consistent-hash owner and ships
  // each bucket as batch frames to its owner; pages whose owner is unusable
  // ride the single-page path (which falls back like PlaceAndSend).
  Result<TimeNs> PlaceBatchByOwner(TimeNs now, std::span<const uint64_t> page_ids,
                                   std::span<const uint8_t> data);

  Result<TimeNs> SendToDisk(TimeNs now, uint64_t page_id, std::span<const uint8_t> data);

  std::unique_ptr<DiskBackend> local_disk_;
  std::unordered_map<uint64_t, Location> table_;
  int64_t pages_on_disk_ = 0;
};

}  // namespace rmp

#endif  // SRC_CORE_NO_RELIABILITY_H_
