#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace rmp {

void EventQueue::ScheduleAt(TimeNs when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

bool EventQueue::Step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle instead (std::function copy is cheap enough
  // at simulation granularity).
  Event event = heap_.top();
  heap_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (Step()) {
  }
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace rmp
