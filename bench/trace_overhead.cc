// Tracing overhead (DESIGN.md §17): what does the observability pipeline
// cost the data path at each head-sampling rate?
//
// The claim to verify is that `trace.sample_per_1k = 0` is provably
// zero-overhead — the tracer collapses to one relaxed atomic load per op and
// requests go out unstamped, so servers skip their span shim too. The sweep
// measures the full client software path (policy + placement + in-proc wire
// + server handler) per pageout/pagein pair at sampling off (0), the
// production rate (1 per 1k), and trace-everything (1000 per 1k), median of
// 5 runs each.
//
//   $ ./trace_overhead           # full sweep
//   $ ./trace_overhead --quick   # tiny op counts (the obs_smoke ctest)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace rmp {
namespace {

int64_t WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One run: `ops` pageout+pagein pairs over an untimed in-proc testbed (no
// network model — software cost only). Returns wall nanoseconds per pair.
Result<double> RunOnce(int sample_per_1k, uint64_t ops) {
  constexpr uint64_t kWorkingSet = 1024;
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = kWorkingSet * 2;
  params.pager.trace.sample_per_1k = sample_per_1k;
  auto testbed = Testbed::Create(params);
  if (!testbed.ok()) {
    return testbed.status();
  }
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  FillPattern(page.span(), 42);
  // Warmup: populate the working set so the measured loop never allocates.
  for (uint64_t id = 0; id < kWorkingSet; ++id) {
    auto done = backend.PageOut(0, id, page.span());
    if (!done.ok()) {
      return done.status();
    }
  }
  const int64_t start = WallNanos();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t id = i % kWorkingSet;
    auto out = backend.PageOut(0, id, page.span());
    if (!out.ok()) {
      return out.status();
    }
    auto in = backend.PageIn(0, id, page.span());
    if (!in.ok()) {
      return in.status();
    }
  }
  const int64_t elapsed = WallNanos() - start;
  return static_cast<double>(elapsed) / static_cast<double>(ops);
}

Result<double> MedianOfRuns(int sample_per_1k, uint64_t ops, int runs) {
  std::vector<double> samples;
  for (int r = 0; r < runs; ++r) {
    auto ns = RunOnce(sample_per_1k, ops);
    if (!ns.ok()) {
      return ns.status();
    }
    samples.push_back(*ns);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const uint64_t ops = quick ? 2000 : 20000;
  const int runs = quick ? 3 : 5;

  std::printf("=== tracing overhead per pageout+pagein pair (median of %d x %llu ops) ===\n\n",
              runs, static_cast<unsigned long long>(ops));
  const struct {
    int sample_per_1k;
    const char* label;
  } kRates[] = {
      {0, "sample_0"},       // Tracing hard off: the zero-overhead claim.
      {1, "sample_1_per_1k"},  // Production head sampling.
      {1000, "sample_all"},  // Every op traced, spans recorded server-side.
  };
  double baseline_ns = 0.0;
  for (const auto& rate : kRates) {
    auto median = MedianOfRuns(rate.sample_per_1k, ops, runs);
    if (!median.ok()) {
      std::fprintf(stderr, "%s: %s\n", rate.label, median.status().ToString().c_str());
      return 1;
    }
    if (rate.sample_per_1k == 0) {
      baseline_ns = *median;
    }
    const double overhead_pct =
        baseline_ns > 0.0 ? (*median / baseline_ns - 1.0) * 100.0 : 0.0;
    std::printf("  %-18s %10.0f ns/op   overhead vs off %+6.2f%%\n", rate.label, *median,
                overhead_pct);
    EmitBenchResult("trace_overhead", rate.label, "ns_per_op", *median, "ns");
    if (rate.sample_per_1k != 0) {
      EmitBenchResult("trace_overhead", rate.label, "overhead_pct", overhead_pct, "%");
    }
  }
  std::printf("\nsampling-off must sit within run-to-run noise of the pre-§17 path; the\n"
              "full-sampling row prices the span rings and wire stamping.\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
