#include "src/vm/paged_vm.h"

#include <algorithm>
#include <cassert>

namespace rmp {

PagedVm::PagedVm(const VmParams& params, PagingBackend* backend)
    : params_(params),
      backend_(backend),
      policy_(MakeReplacementPolicy(params.replacement)),
      frames_(params.physical_frames),
      ever_paged_out_(params.virtual_pages, false) {
  assert(backend_ != nullptr);
  assert(params_.physical_frames > 0);
  free_frames_.reserve(params_.physical_frames);
  for (uint32_t f = 0; f < params_.physical_frames; ++f) {
    free_frames_.push_back(params_.physical_frames - 1 - f);  // Pop in order 0,1,2...
  }
}

bool PagedVm::IsDirty(uint64_t vpage) const {
  auto it = frame_of_.find(vpage);
  return it != frame_of_.end() && frames_[it->second].dirty;
}

Result<uint32_t> PagedVm::TakeFreeFrame(TimeNs* now) {
  if (!free_frames_.empty()) {
    const uint32_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  const uint32_t victim = policy_->Victim();
  Frame& slot = frames_[victim];
  assert(slot.live);
  if (slot.dirty) {
    auto done = backend_->PageOut(*now, slot.vpage, slot.data.span());
    if (!done.ok()) {
      return done.status();
    }
    *now = *done;
    ever_paged_out_[slot.vpage] = true;
    ++stats_.pageouts;
  } else {
    ++stats_.clean_evictions;
  }
  policy_->OnEvict(victim);
  frame_of_.erase(slot.vpage);
  slot.live = false;
  slot.dirty = false;
  return victim;
}

Result<uint32_t> PagedVm::Fault(TimeNs* now, uint64_t vpage) {
  ++stats_.faults;
  RMP_ASSIGN_OR_RETURN(const uint32_t frame, TakeFreeFrame(now));
  Frame& slot = frames_[frame];
  if (ever_paged_out_[vpage]) {
    auto done = backend_->PageIn(*now, vpage, slot.data.span());
    if (!done.ok()) {
      return done.status();
    }
    *now = *done;
    ++stats_.pageins;
  } else {
    slot.data.Clear();
    ++stats_.zero_fills;
  }
  slot.vpage = vpage;
  slot.dirty = false;
  slot.live = true;
  frame_of_[vpage] = frame;
  policy_->OnInsert(frame);
  return frame;
}

Status PagedVm::Touch(TimeNs* now, uint64_t vpage, bool write) {
  if (vpage >= params_.virtual_pages) {
    return InvalidArgumentError("virtual page out of range");
  }
  if (observer_) {
    observer_(vpage, write);
  }
  ++stats_.accesses;
  uint32_t frame;
  auto it = frame_of_.find(vpage);
  if (it != frame_of_.end()) {
    ++stats_.hits;
    frame = it->second;
    policy_->OnAccess(frame);
  } else {
    RMP_ASSIGN_OR_RETURN(frame, Fault(now, vpage));
  }
  if (write) {
    frames_[frame].dirty = true;
  }
  return OkStatus();
}

Status PagedVm::Read(TimeNs* now, uint64_t addr, std::span<uint8_t> out) {
  uint64_t offset = 0;
  while (offset < out.size()) {
    const uint64_t vpage = (addr + offset) / kPageSize;
    const uint64_t in_page = (addr + offset) % kPageSize;
    const uint64_t chunk = std::min<uint64_t>(out.size() - offset, kPageSize - in_page);
    RMP_RETURN_IF_ERROR(Touch(now, vpage, /*write=*/false));
    const Frame& slot = frames_[frame_of_.at(vpage)];
    std::copy_n(slot.data.data() + in_page, chunk, out.data() + offset);
    offset += chunk;
  }
  return OkStatus();
}

Status PagedVm::Write(TimeNs* now, uint64_t addr, std::span<const uint8_t> in) {
  uint64_t offset = 0;
  while (offset < in.size()) {
    const uint64_t vpage = (addr + offset) / kPageSize;
    const uint64_t in_page = (addr + offset) % kPageSize;
    const uint64_t chunk = std::min<uint64_t>(in.size() - offset, kPageSize - in_page);
    RMP_RETURN_IF_ERROR(Touch(now, vpage, /*write=*/true));
    Frame& slot = frames_[frame_of_.at(vpage)];
    std::copy_n(in.data() + offset, chunk, slot.data.data() + in_page);
    offset += chunk;
  }
  return OkStatus();
}

Status PagedVm::FlushDirty(TimeNs* now) {
  // Deterministic order: ascending vpage.
  std::vector<uint64_t> dirty;
  for (const auto& [vpage, frame] : frame_of_) {
    if (frames_[frame].dirty) {
      dirty.push_back(vpage);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  for (const uint64_t vpage : dirty) {
    Frame& slot = frames_[frame_of_.at(vpage)];
    auto done = backend_->PageOut(*now, vpage, slot.data.span());
    if (!done.ok()) {
      return done.status();
    }
    *now = *done;
    ever_paged_out_[vpage] = true;
    slot.dirty = false;
    ++stats_.pageouts;
  }
  return OkStatus();
}

void PagedVm::InvalidateAll() {
  for (uint32_t f = 0; f < params_.physical_frames; ++f) {
    if (frames_[f].live) {
      policy_->OnEvict(f);
      frames_[f].live = false;
      frames_[f].dirty = false;
    }
  }
  frame_of_.clear();
  free_frames_.clear();
  for (uint32_t f = 0; f < params_.physical_frames; ++f) {
    free_frames_.push_back(params_.physical_frames - 1 - f);
  }
}

}  // namespace rmp
