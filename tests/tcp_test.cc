// End-to-end tests of the real TCP transport: a MemoryServer behind a
// TcpServer on loopback, driven by TcpTransport clients — the deployment
// shape of the paper's user-level server (§3.2).

#include "src/transport/tcp.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

// All sessions share one server object (thread-safe), mirroring one
// workstation's donated memory.
struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryServerParams params;
    params.name = "tcp-server";
    params.capacity_pages = 256;
    server_ = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(0, [this]() -> std::unique_ptr<MessageHandler> {
      return std::make_unique<ForwardingHandler>(server_);
    });
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    tcp_server_ = std::move(*started);
  }

  Result<std::unique_ptr<TcpTransport>> Connect() {
    return TcpTransport::Connect("127.0.0.1", tcp_server_->port());
  }

  std::shared_ptr<MemoryServer> server_;
  std::unique_ptr<TcpServer> tcp_server_;
};

TEST_F(TcpTest, ConnectAndQueryLoad) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto reply = (*client)->Call(MakeLoadQuery(1));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MessageType::kLoadReport);
  EXPECT_EQ(reply->aux, 256u);
}

TEST_F(TcpTest, PageRoundTripOverRealSockets) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 4));
  ASSERT_TRUE(alloc.ok());
  ASSERT_EQ(alloc->status_code(), ErrorCode::kOk);
  PageBuffer page;
  FillPattern(page.span(), 4242);
  auto ack = (*client)->Call(MakePageOut(2, alloc->slot, page.span()));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->status_code(), ErrorCode::kOk);
  auto pagein = (*client)->Call(MakePageIn(3, alloc->slot));
  ASSERT_TRUE(pagein.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), 4242));
}

TEST_F(TcpTest, ManySequentialPages) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto alloc = (*client)->Call(MakeAllocRequest(1, 64));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  for (uint64_t i = 0; i < 64; ++i) {
    FillPattern(page.span(), i);
    auto ack = (*client)->Call(MakePageOut(100 + i, alloc->slot + i, page.span()));
    ASSERT_TRUE(ack.ok()) << i;
  }
  for (uint64_t i = 0; i < 64; ++i) {
    auto pagein = (*client)->Call(MakePageIn(200 + i, alloc->slot + i));
    ASSERT_TRUE(pagein.ok()) << i;
    EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), i)) << i;
  }
}

TEST_F(TcpTest, TwoClientsShareOneServer) {
  auto a = Connect();
  auto b = Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto alloc_a = (*a)->Call(MakeAllocRequest(1, 8));
  auto alloc_b = (*b)->Call(MakeAllocRequest(1, 8));
  ASSERT_TRUE(alloc_a.ok());
  ASSERT_TRUE(alloc_b.ok());
  EXPECT_NE(alloc_a->slot, alloc_b->slot);  // Distinct swap space.
  PageBuffer page_a;
  PageBuffer page_b;
  FillPattern(page_a.span(), 1);
  FillPattern(page_b.span(), 2);
  ASSERT_TRUE((*a)->Call(MakePageOut(2, alloc_a->slot, page_a.span())).ok());
  ASSERT_TRUE((*b)->Call(MakePageOut(2, alloc_b->slot, page_b.span())).ok());
  auto in_a = (*a)->Call(MakePageIn(3, alloc_a->slot));
  auto in_b = (*b)->Call(MakePageIn(3, alloc_b->slot));
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(in_a->payload), 1));
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(in_b->payload), 2));
  EXPECT_GE(tcp_server_->connections_served(), 2);
}

TEST_F(TcpTest, ServerShutdownSurfacesUnavailable) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
  tcp_server_->Shutdown();
  auto reply = (*client)->Call(MakeLoadQuery(2));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE((*client)->connected());
}

TEST_F(TcpTest, ConnectToClosedPortFails) {
  tcp_server_->Shutdown();
  const uint16_t dead_port = tcp_server_->port();
  auto client = TcpTransport::Connect("127.0.0.1", dead_port);
  EXPECT_FALSE(client.ok());
}

TEST_F(TcpTest, BadHostRejected) {
  auto client = TcpTransport::Connect("not-an-ip", 1);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), ErrorCode::kInvalidArgument);
}

// --- Authentication (§3.1's access restriction, modernized) -----------------

class TcpAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryServerParams params;
    params.capacity_pages = 64;
    server_ = std::make_shared<MemoryServer>(params);
    auto started = TcpServer::Start(
        0,
        [this] {
          return std::unique_ptr<MessageHandler>(new ForwardingHandler(server_));
        },
        /*required_token=*/"hunter2");
    ASSERT_TRUE(started.ok());
    tcp_server_ = std::move(*started);
  }

  std::shared_ptr<MemoryServer> server_;
  std::unique_ptr<TcpServer> tcp_server_;
};

TEST_F(TcpAuthTest, CorrectTokenIsAccepted) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "hunter2");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

TEST_F(TcpAuthTest, WrongTokenIsRejected) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port(), "wrong");
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TcpAuthTest, UnauthenticatedRequestsAreRefused) {
  auto client = TcpTransport::Connect("127.0.0.1", tcp_server_->port());  // No token sent.
  ASSERT_TRUE(client.ok());  // TCP connect succeeds...
  auto reply = (*client)->Call(MakeLoadQuery(1));
  ASSERT_TRUE(reply.ok());
  // ...but every request is refused until AUTH.
  EXPECT_EQ(reply->type, MessageType::kErrorReply);
  EXPECT_EQ(reply->status_code(), ErrorCode::kFailedPrecondition);
}

TEST_F(TcpAuthTest, OpenServerIgnoresAuthRequirement) {
  // A server started WITHOUT a token accepts token-presenting clients too.
  MemoryServerParams params;
  params.capacity_pages = 64;
  auto open_server = std::make_shared<MemoryServer>(params);
  auto started = TcpServer::Start(0, [open_server] {
    return std::unique_ptr<MessageHandler>(new ForwardingHandler(open_server));
  });
  ASSERT_TRUE(started.ok());
  auto client = TcpTransport::Connect("127.0.0.1", (*started)->port(), "any-token");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

TEST_F(TcpTest, LocalhostAliasResolves) {
  auto client = TcpTransport::Connect("localhost", tcp_server_->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Call(MakeLoadQuery(1)).ok());
}

}  // namespace
}  // namespace rmp
