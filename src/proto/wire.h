// Wire protocol between the Remote Memory Pager client and memory servers.
//
// The paper's pager speaks a small request/reply protocol over TCP sockets
// (§3.1-3.2): swap-space allocation and release, pageout, pagein, and
// periodic memory-load reports that let the client notice an overloaded
// server and migrate pages away. This module defines those messages and a
// compact little-endian binary encoding with CRC-guarded payloads.
//
// Layout (all integers little-endian):
//   magic      u32   'RMP1'
//   type       u8
//   flags      u8    (bit 0: ADVISE_STOP piggyback)
//   tenant_id  u16   0 = legacy/untenanted (the field was reserved-zero
//                    before DESIGN.md §15, so old frames decode unchanged)
//   request_id u64   client-chosen; echoed in the reply
//   slot       u64   server swap slot (pageout/pagein)
//   count      u64   page count (alloc/free) or free-pages (load report)
//   aux        u64   total pages (load report) / error detail
//   status     u32   rmp::ErrorCode of a reply. On a *request* the field was
//                    reserved-zero; a request with the TRACED flag set
//                    repurposes it as the trace id (DESIGN.md §17), the same
//                    precedent tenant_id set for the reserved u16. Requests
//                    without the flag leave it zero, so legacy frames decode
//                    unchanged.
//   payload_crc u32  CRC32 of payload (0 when empty)
//   payload_len u32
//   payload    payload_len bytes

#ifndef SRC_PROTO_WIRE_H_
#define SRC_PROTO_WIRE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace rmp {

enum class MessageType : uint8_t {
  kAllocRequest = 1,   // count = pages wanted.
  kAllocReply = 2,     // count = pages granted (0 + status=NO_SPACE on denial).
  kFreeRequest = 3,    // slot = first slot, count = pages.
  kFreeReply = 4,
  kPageOut = 5,        // slot + payload.
  kPageOutAck = 6,     // slot echoed; flags may carry ADVISE_STOP.
  kPageIn = 7,         // slot.
  kPageInReply = 8,    // slot + payload (or status != OK).
  kLoadQuery = 9,
  kLoadReport = 10,    // count = free pages, aux = total pages.
  kShutdown = 11,
  kErrorReply = 12,    // Catch-all failure reply; status holds the code.
  // Storage primitives used by the basic (in-place) parity scheme, where the
  // paper has the data server compute old^new and the parity server fold a
  // delta into the stored parity (§2.2 "Parity").
  kDeltaPageOut = 13,  // Store payload at slot; reply carries old XOR new.
  kXorMerge = 14,      // stored[slot] ^= payload (slot auto-created as zero).
  kXorMergeAck = 15,
  // Connection authentication: the paper restricts access to the superuser
  // via privileged ports (§3.1); the modern equivalent is a shared secret
  // presented as the first message of a session. Payload = token bytes.
  kAuth = 16,
  kAuthReply = 17,
  // Vectored data-plane operations: one frame moves up to kMaxBatchPages
  // (slot, page) pairs, amortizing the fixed per-message overhead (header,
  // CRC, syscall, round trip) that the paper's one-page-per-message protocol
  // pays in full. Batch payload layout (all little-endian):
  //   kPageOutBatch:     count u64 slots, then count pages of kPageSize.
  //   kPageOutBatchAck:  count = pages stored; on error status != OK and
  //                      aux = index of the first failing entry.
  //   kPageInBatch:      count u64 slots.
  //   kPageInBatchReply: count pages in request order; on error status != OK,
  //                      aux = failing index, and the payload is empty.
  // The header `slot` field of a batch carries the first slot (used for
  // worker dispatch affinity only); `count` carries the entry count.
  kPageOutBatch = 18,
  kPageOutBatchAck = 19,
  kPageInBatch = 20,
  kPageInBatchReply = 21,
  // Self-healing control plane (DESIGN.md §11). HEARTBEAT is a lightweight
  // liveness probe the HealthMonitor sends on a fixed period; the ack carries
  // the same load report as kLoadReport (count = free pages, aux low 32 bits
  // unused) plus the server's *incarnation* in `slot` — a counter bumped on
  // every restart, so the client can tell a rebooted-empty server (rebuild
  // its pages) from a healed network partition (re-admit, pages intact).
  // ADVISE_STOP piggybacks on the ack flags like it does on pageout acks.
  kHeartbeat = 22,
  kHeartbeatAck = 23,  // slot = incarnation, count = free pages, aux = total.
  // MIGRATE reads a page and frees its slot in one round trip: the read half
  // of the §2.1 drain path costs one protocol crossing instead of a PAGEIN
  // followed by a FREE_REQUEST.
  kMigrate = 24,       // slot.
  kMigrateReply = 25,  // slot + payload; the slot is freed server-side on OK.
  // Live introspection (DESIGN.md §12): STATS pulls the server's metrics
  // registry as a JSON snapshot, TRACE_DUMP its trace ring. Both replies
  // carry the JSON document as the payload; `count` is the document length
  // and `slot` the server's incarnation, so a client can tell which life of
  // the server the numbers describe.
  kStatsQuery = 26,
  kStatsReply = 27,
  kTraceDump = 28,
  kTraceDumpReply = 29,
  // Elastic membership (DESIGN.md §16): the cluster map — epoch, member list
  // with incarnations, consistent-hash ring parameters — travels as a
  // serialized payload (see src/proto/cluster_map.h for the layout, bounds,
  // and the fail-closed decoder). MAP_QUERY pulls a server's current map;
  // MAP_PUBLISH installs a newer one (servers accept only epoch >= their
  // own). Both replies carry the epoch in `slot` so a stale client can
  // learn how far behind it is without parsing the payload.
  kMapQuery = 30,
  kMapReply = 31,       // slot = epoch, count = payload size, payload = map.
  kMapPublish = 32,     // slot = epoch, payload = serialized map.
  kMapPublishAck = 33,  // slot = epoch now in force at the server.
  // Flight recorder (DESIGN.md §17): EVENTS_QUERY pulls the server's
  // structured event journal — health transitions, epoch adoptions,
  // STALE_EPOCH refusals, tenant sheds — as a JSON array. The request `slot`
  // is the minimum sequence number wanted (0 = everything still in the
  // ring); the reply carries `slot` = incarnation and `count` = the journal's
  // next sequence number, so a poller can resume from where it left off.
  kEventsQuery = 34,
  kEventsReply = 35,
};

std::string_view MessageTypeName(MessageType type);

// Flag bits.
inline constexpr uint8_t kFlagAdviseStop = 0x1;  // "send no more pages here" (§2.1).
// Request carries a trace id in its `status` field (DESIGN.md §17). Only
// ever set on requests; replies keep `status` as the error code.
inline constexpr uint8_t kFlagTraced = 0x2;

struct Message {
  MessageType type = MessageType::kErrorReply;
  uint8_t flags = 0;
  // Tenant identity carried by every frame (DESIGN.md §15). 0 is the legacy
  // untenanted id: it encodes to the bytes the old reserved field held, so a
  // tenant-unaware peer is wire-compatible. Nonzero ids are bound to a
  // session at AUTH time and validated against server quotas.
  uint16_t tenant = 0;
  uint64_t request_id = 0;
  uint64_t slot = 0;
  uint64_t count = 0;
  uint64_t aux = 0;
  uint32_t status = 0;  // static_cast<uint32_t>(ErrorCode).
  std::vector<uint8_t> payload;

  bool advise_stop() const { return (flags & kFlagAdviseStop) != 0; }
  ErrorCode status_code() const { return static_cast<ErrorCode>(status); }
  // Trace id of a request frame; 0 = untraced (legacy frames and sampled-out
  // requests). Meaningless on replies.
  uint32_t trace_id() const { return (flags & kFlagTraced) != 0 ? status : 0; }

  bool operator==(const Message& other) const;
};

// Size of the fixed header in bytes.
inline constexpr size_t kWireHeaderSize = 48;
// The full fixed-size frame prefix: header plus the payload_len field. A
// receiver that reads exactly this many bytes knows the exact payload size
// and can recv the payload directly into its destination buffer.
inline constexpr size_t kWirePrefixSize = kWireHeaderSize + 4;
inline constexpr uint32_t kWireMagic = 0x31504d52;  // "RMP1".
// Most (slot, page) pairs one batch frame may carry — one alloc extent's
// worth of 8 KB pages (see RemotePagerParams::alloc_extent_pages).
inline constexpr uint32_t kMaxBatchPages = 256;
// Upper bound on payload_len accepted from the wire; a corrupt length field
// must not drive an unbounded allocation. Sized for a full batch frame
// (kMaxBatchPages x (8-byte slot + 8 KB page) is just over 2 MB).
inline constexpr uint32_t kMaxWirePayload = 4u << 20;
// Largest tenant id accepted from the wire. The field is a u16, but per-tenant
// state (quota buckets, scheduler queues, metric series) is allocated per
// observed id, so a hostile frame must not be able to demand 65k series; the
// decoder rejects ids above this bound outright. 0 stays the legacy id.
inline constexpr uint16_t kMaxTenantId = 1024;

// The decoded fixed-size frame prefix. Splitting the prefix from the payload
// lets the transport frame messages without coalescing header and payload
// into one temporary buffer (writev on send, two exact reads on receive).
struct WireHeader {
  MessageType type = MessageType::kErrorReply;
  uint8_t flags = 0;
  uint16_t tenant = 0;
  uint64_t request_id = 0;
  uint64_t slot = 0;
  uint64_t count = 0;
  uint64_t aux = 0;
  uint32_t status = 0;
  uint32_t payload_crc = 0;
  uint32_t payload_len = 0;
};

// Writes the frame prefix for `message` (whose payload CRC is `payload_crc`)
// into `out`, which must hold kWirePrefixSize bytes.
void EncodeHeader(const Message& message, uint32_t payload_crc, uint8_t* out);

// Parses and validates a frame prefix (magic, type, tenant bound, payload
// bound). `prefix` must hold at least kWirePrefixSize bytes.
Result<WireHeader> DecodeHeader(std::span<const uint8_t> prefix);

// Expands header fields into a Message with an empty payload.
Message MessageFromHeader(const WireHeader& header);

// The CRC as computed for the wire: CRC32 of the payload, 0 when empty.
uint32_t PayloadCrc(std::span<const uint8_t> payload);

// Serializes `message`, computing the payload CRC.
std::vector<uint8_t> Encode(const Message& message);

// Appends the encoding to `out` (avoids an allocation per message on the
// socket send path).
void EncodeTo(const Message& message, std::vector<uint8_t>* out);

// Decodes one complete message from `bytes` (which must contain exactly one
// message). Verifies magic and payload CRC.
Result<Message> Decode(std::span<const uint8_t> bytes);

// Incremental decoder for a TCP byte stream: feed arbitrary chunks, pop
// complete messages as they form.
class FrameReader {
 public:
  // Appends raw bytes from the socket.
  void Feed(std::span<const uint8_t> bytes);

  // Extracts the next complete message, if any. Returns:
  //   Result with a message  — one message consumed from the buffer,
  //   NotFoundError          — need more bytes,
  //   ProtocolError/Corruption — stream is broken (caller should drop it).
  Result<Message> Next();

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Convenience constructors for the common messages.
Message MakeAllocRequest(uint64_t request_id, uint64_t pages);
Message MakeAllocReply(uint64_t request_id, uint64_t granted, ErrorCode status);
Message MakePageOut(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data);
Message MakePageOutAck(uint64_t request_id, uint64_t slot, ErrorCode status, bool advise_stop);
Message MakePageIn(uint64_t request_id, uint64_t slot);
Message MakePageInReply(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data,
                        ErrorCode status);
Message MakeFreeRequest(uint64_t request_id, uint64_t first_slot, uint64_t pages);
Message MakeLoadQuery(uint64_t request_id);
Message MakeLoadReport(uint64_t request_id, uint64_t free_pages, uint64_t total_pages,
                       bool advise_stop);
Message MakeShutdown(uint64_t request_id);
Message MakeErrorReply(uint64_t request_id, ErrorCode status);
// `tenant` binds the session to a tenant id server-side (DESIGN.md §15);
// 0 preserves the legacy untenanted handshake byte-for-byte.
Message MakeAuth(uint64_t request_id, std::string_view token, uint16_t tenant = 0);
Message MakeAuthReply(uint64_t request_id, ErrorCode status);
Message MakeHeartbeat(uint64_t request_id);
Message MakeHeartbeatAck(uint64_t request_id, uint64_t incarnation, uint64_t free_pages,
                         uint64_t total_pages, bool advise_stop);
Message MakeMigrate(uint64_t request_id, uint64_t slot);
Message MakeMigrateReply(uint64_t request_id, uint64_t slot, std::span<const uint8_t> data,
                         ErrorCode status);
Message MakeStatsQuery(uint64_t request_id);
Message MakeStatsReply(uint64_t request_id, uint64_t incarnation, std::string_view json);
// `document` selects what TRACE_DUMP returns (travels in the request `slot`):
// 0 = the attached tracer's trace ring (the original PR 5 behaviour),
// 1 = the server's own span ring (DESIGN.md §17), for client-side stitching.
Message MakeTraceDump(uint64_t request_id, uint64_t document = 0);
Message MakeTraceDumpReply(uint64_t request_id, uint64_t incarnation, std::string_view json);
Message MakeEventsQuery(uint64_t request_id, uint64_t min_seq = 0);
Message MakeEventsReply(uint64_t request_id, uint64_t incarnation, uint64_t next_seq,
                        std::string_view json);

// Stamps `trace_id` onto a request frame (sets kFlagTraced and the status
// field); 0 clears both. Never call on replies.
void StampTraceId(Message* request, uint32_t trace_id);
// Cluster-map distribution (DESIGN.md §16). `map_bytes` is a serialized
// ClusterMap (src/proto/cluster_map.h); `epoch` duplicates the map's epoch in
// the header so receivers can order frames without decoding the payload.
Message MakeMapQuery(uint64_t request_id);
Message MakeMapReply(uint64_t request_id, uint64_t epoch, std::span<const uint8_t> map_bytes,
                     ErrorCode status);
Message MakeMapPublish(uint64_t request_id, uint64_t epoch, std::span<const uint8_t> map_bytes);
Message MakeMapPublishAck(uint64_t request_id, uint64_t epoch, ErrorCode status);

// The JSON document carried by a kStatsReply / kTraceDumpReply /
// kEventsReply payload.
std::string_view IntrospectionJson(const Message& message);

// Batched data-plane messages. `pages` is the concatenation of
// slots.size() pages of exactly kPageSize bytes each.
Message MakePageOutBatch(uint64_t request_id, std::span<const uint64_t> slots,
                         std::span<const uint8_t> pages);
Message MakePageOutBatchAck(uint64_t request_id, uint64_t stored, ErrorCode status,
                            bool advise_stop);
Message MakePageInBatch(uint64_t request_id, std::span<const uint64_t> slots);
Message MakePageInBatchReply(uint64_t request_id, std::span<const uint8_t> pages,
                             ErrorCode status);

// Validates a batch message's count/payload-size consistency (count within
// [1, kMaxBatchPages], payload exactly the declared layout) and returns the
// entry count. ProtocolError on malformed frames.
Result<size_t> ValidateBatch(const Message& message);

// Slot i of a validated kPageOutBatch / kPageInBatch payload.
uint64_t BatchSlot(const Message& message, size_t i);

// Page i of a validated kPageOutBatch or kPageInBatchReply payload.
std::span<const uint8_t> BatchPage(const Message& message, size_t i);

}  // namespace rmp

#endif  // SRC_PROTO_WIRE_H_
