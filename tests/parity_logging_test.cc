// Tests of the paper's main contribution. Beyond unit behaviour, these
// verify the load-bearing invariants:
//   * parity consistency: for every sealed group, XOR of the member pages
//     (read directly from the servers) equals the stored parity page;
//   * single-crash recoverability at ANY point in any workload, including
//     with the open group half-filled;
//   * inactive-version bookkeeping and group reclamation;
//   * garbage collection under exhausted overflow.

#include "src/core/parity_logging.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/testbed.h"
#include "src/util/rng.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int data_servers, uint64_t capacity = 512,
                                 int group_size = 0) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = data_servers;
  params.server_capacity_pages = capacity;
  params.pager.alloc_extent_pages = 8;
  params.parity_logging.group_size = group_size;
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

// Reads every sealed group's members straight from the server objects and
// checks XOR == stored parity. The strongest structural check we have.
void VerifyParityConsistency(Testbed* bed) {
  ParityLoggingBackend* backend = bed->parity_logging();
  const size_t parity_peer = backend->parity_peer();
  for (const auto& group : backend->Snapshot()) {
    if (!group.sealed) {
      continue;
    }
    PageBuffer expected;
    for (const auto& entry : group.entries) {
      auto page = bed->server(entry.peer).Load(entry.slot);
      ASSERT_TRUE(page.ok()) << "group " << group.group_id << " slot " << entry.slot;
      expected.XorWith(page->span());
    }
    auto parity = bed->server(parity_peer).Load(group.parity_slot);
    ASSERT_TRUE(parity.ok()) << "group " << group.group_id;
    EXPECT_EQ(*parity, expected) << "parity mismatch in group " << group.group_id;
  }
}

TEST(ParityLoggingTest, RoundTripAndTransferCount) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  constexpr int kPages = 40;  // Exactly 10 groups of 4.
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  // 1 + 1/S transfers per pageout: 40 pages + 10 parity flushes.
  EXPECT_EQ(backend->stats().page_transfers, kPages + kPages / 4);
  EXPECT_EQ(backend->parity_flushes(), 10);
  PageBuffer in;
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
  EXPECT_TRUE(backend->CheckInvariants().ok());
}

TEST(ParityLoggingTest, ParityConsistencyAfterSequentialWrites) {
  auto bed = MakeBed(4);
  for (uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  VerifyParityConsistency(bed.get());
}

TEST(ParityLoggingTest, GroupsUseDistinctServers) {
  auto bed = MakeBed(4);
  for (uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  for (const auto& group : bed->parity_logging()->Snapshot()) {
    std::vector<size_t> seen;
    for (const auto& entry : group.entries) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), entry.peer), 0)
          << "group " << group.group_id;
      seen.push_back(entry.peer);
    }
  }
}

TEST(ParityLoggingTest, RewriteMarksOldVersionInactive) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  ASSERT_TRUE(backend->PageOut(0, 1, Patterned(10).span()).ok());
  ASSERT_TRUE(backend->PageOut(0, 1, Patterned(11).span()).ok());
  int active_entries = 0;
  int inactive_entries = 0;
  for (const auto& group : backend->Snapshot()) {
    for (const auto& entry : group.entries) {
      (entry.active ? active_entries : inactive_entries) += 1;
    }
  }
  EXPECT_EQ(active_entries, 1);
  EXPECT_EQ(inactive_entries, 1);
  PageBuffer in;
  ASSERT_TRUE(backend->PageIn(0, 1, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 11));
  EXPECT_TRUE(backend->CheckInvariants().ok());
}

TEST(ParityLoggingTest, FullyInactiveGroupsAreReclaimed) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  // Write 8 pages (2 sealed groups), then rewrite all of them.
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(100 + p).span()).ok());
  }
  EXPECT_GE(backend->groups_reclaimed(), 2);
  EXPECT_TRUE(backend->CheckInvariants().ok());
  VerifyParityConsistency(bed.get());
}

TEST(ParityLoggingTest, CrashOfEveryDataServerIsRecoverable) {
  for (size_t victim = 0; victim < 4; ++victim) {
    auto bed = MakeBed(4);
    ParityLoggingBackend* backend = bed->parity_logging();
    std::map<uint64_t, uint64_t> version;
    for (uint64_t p = 0; p < 50; ++p) {
      version[p] = p + 1000;
      ASSERT_TRUE(backend->PageOut(0, p, Patterned(version[p]).span()).ok());
    }
    bed->CrashServer(victim);
    TimeNs now = 0;
    ASSERT_TRUE(backend->Recover(victim, &now).ok()) << "victim " << victim;
    EXPECT_TRUE(backend->CheckInvariants().ok());
    PageBuffer in;
    for (const auto& [p, seed] : version) {
      ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok())
          << "victim " << victim << " page " << p;
      EXPECT_TRUE(CheckPattern(in.span(), seed));
    }
    VerifyParityConsistency(bed.get());
  }
}

TEST(ParityLoggingTest, CrashWithOpenGroupPartiallyFilled) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  // 6 pages: one sealed group of 4, open group holds 2 (covered only by the
  // client-side accumulator).
  for (uint64_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p + 7).span()).ok());
  }
  bed->CrashServer(1);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(1, &now).ok());
  PageBuffer in;
  for (uint64_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p + 7));
  }
  EXPECT_TRUE(backend->CheckInvariants().ok());
}

TEST(ParityLoggingTest, PageInTriggersRecoveryAutomatically) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  bed->CrashServer(2);
  // No explicit Recover: the first pagein that hits the dead server must
  // reconstruct transparently.
  PageBuffer in;
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
  EXPECT_TRUE(backend->CheckInvariants().ok());
}

TEST(ParityLoggingTest, ParityServerCrashRebuilds) {
  auto bed = MakeBed(4);
  ParityLoggingBackend* backend = bed->parity_logging();
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  const size_t parity_peer = backend->parity_peer();
  bed->CrashServer(parity_peer);
  bed->RestartServer(parity_peer);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(parity_peer, &now).ok());
  VerifyParityConsistency(bed.get());
  // And a subsequent data-server crash is again survivable.
  bed->CrashServer(0);
  ASSERT_TRUE(backend->Recover(0, &now).ok());
  PageBuffer in;
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(ParityLoggingTest, ExplicitGroupSizeSealsEarly) {
  auto bed = MakeBed(4, 512, /*group_size=*/2);
  ParityLoggingBackend* backend = bed->parity_logging();
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_EQ(backend->parity_flushes(), 4);  // Groups of 2.
  EXPECT_TRUE(backend->CheckInvariants().ok());
}

TEST(ParityLoggingTest, GarbageCollectionRecoversSpace) {
  // Tight capacity: 1.15x the live set per server.
  auto bed = MakeBed(4, /*capacity=*/64);
  ParityLoggingBackend* backend = bed->parity_logging();
  constexpr uint64_t kLive = 200;  // 50/server live, 64 capacity.
  Rng rng(1);
  std::vector<uint64_t> version(kLive, 0);
  for (uint64_t p = 0; p < kLive; ++p) {
    version[p] = p + 1;
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(version[p]).span()).ok()) << p;
  }
  // Random churn forces inactive buildup and eventually GC.
  for (int op = 0; op < 2000; ++op) {
    const uint64_t p = rng.Below(kLive);
    version[p] = rng.Next();
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(version[p]).span()).ok()) << op;
  }
  EXPECT_GT(backend->gc_passes(), 0);
  EXPECT_TRUE(backend->CheckInvariants().ok());
  PageBuffer in;
  for (uint64_t p = 0; p < kLive; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), version[p]));
  }
  VerifyParityConsistency(bed.get());
}

TEST(ParityLoggingTest, CrashAfterGarbageCollectionStillRecoverable) {
  // Capacity must leave room for recovery to re-home a dead server's share
  // onto the 3 survivors (200 live / 3 = 67 pages each, plus slack).
  auto bed = MakeBed(4, /*capacity=*/96);
  ParityLoggingBackend* backend = bed->parity_logging();
  Rng rng(2);
  constexpr uint64_t kLive = 200;
  std::vector<uint64_t> version(kLive, 1);
  for (uint64_t p = 0; p < kLive; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(1).span()).ok());
  }
  for (int op = 0; op < 1500; ++op) {
    const uint64_t p = rng.Below(kLive);
    version[p] = rng.Next();
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(version[p]).span()).ok());
  }
  ASSERT_GT(backend->gc_passes(), 0);
  bed->CrashServer(3);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(3, &now).ok());
  PageBuffer in;
  for (uint64_t p = 0; p < kLive; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), version[p]));
  }
}

// Property sweep: random op streams with a crash at a random point, across
// seeds and server counts. The paper's core claim — any single workstation
// failure is fully recoverable — checked end to end.
struct CrashSweepParam {
  uint64_t seed;
  int data_servers;
};

class ParityCrashSweepTest : public ::testing::TestWithParam<CrashSweepParam> {};

TEST_P(ParityCrashSweepTest, RandomOpsRandomCrashFullRecovery) {
  const CrashSweepParam param = GetParam();
  auto bed = MakeBed(param.data_servers, /*capacity=*/256);
  ParityLoggingBackend* backend = bed->parity_logging();
  Rng rng(param.seed);
  std::map<uint64_t, uint64_t> version;
  const int crash_at = static_cast<int>(rng.Below(300)) + 10;
  const auto victim = static_cast<size_t>(rng.Below(param.data_servers + 1));
  for (int op = 0; op < 400; ++op) {
    if (op == crash_at) {
      bed->CrashServer(victim);
      if (victim == backend->parity_peer()) {
        bed->RestartServer(victim);  // A replacement parity host arrives.
      }
      TimeNs now = 0;
      ASSERT_TRUE(backend->Recover(victim, &now).ok())
          << "seed " << param.seed << " victim " << victim;
    }
    const uint64_t p = rng.Below(60);
    const uint64_t seed = rng.Next();
    auto done = backend->PageOut(0, p, Patterned(seed).span());
    ASSERT_TRUE(done.ok()) << "seed " << param.seed << " op " << op << ": "
                           << done.status().ToString();
    version[p] = seed;
  }
  ASSERT_TRUE(backend->CheckInvariants().ok());
  PageBuffer in;
  for (const auto& [p, seed] : version) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok()) << "seed " << param.seed;
    EXPECT_TRUE(CheckPattern(in.span(), seed));
  }
  VerifyParityConsistency(bed.get());
}

std::vector<CrashSweepParam> SweepParams() {
  std::vector<CrashSweepParam> params;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (int servers : {2, 4, 6}) {
      params.push_back({seed * 977, servers});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParityCrashSweepTest, ::testing::ValuesIn(SweepParams()));

}  // namespace
}  // namespace rmp
