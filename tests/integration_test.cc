// Full-stack integration: workload -> PagedVm -> policy backend -> servers,
// with timing models attached, plus the pager running over REAL TCP sockets
// end to end — the complete shape of the paper's deployment.

#include <gtest/gtest.h>

#include "src/core/parity_logging.h"
#include "src/core/testbed.h"
#include "src/model/run_simulator.h"
#include "src/net/ethernet_model.h"
#include "src/server/memory_server.h"
#include "src/transport/tcp.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

// --- Simulated full stack ------------------------------------------------------

TEST(IntegrationTest, PaperHeadlineGaussRemoteBeatsDisk) {
  auto gauss = MakeGauss();
  auto network = std::make_shared<EthernetModel>();

  TestbedParams remote_params;
  remote_params.policy = Policy::kNoReliability;
  remote_params.data_servers = 2;
  remote_params.server_capacity_pages = 8192;
  remote_params.network = network;
  auto remote = Testbed::Create(remote_params);
  ASSERT_TRUE(remote.ok());

  TestbedParams disk_params;
  disk_params.policy = Policy::kDisk;
  auto disk = Testbed::Create(disk_params);
  ASSERT_TRUE(disk.ok());

  RunConfig config;
  config.physical_frames = 2304;
  auto remote_run = SimulateRun(*gauss, &(*remote)->backend(), config);
  auto disk_run = SimulateRun(*gauss, &(*disk)->backend(), config);
  ASSERT_TRUE(remote_run.ok());
  ASSERT_TRUE(disk_run.ok());
  // Paper: NO_RELIABILITY up to 96% faster than DISK on GAUSS. Require a
  // conservative 1.5x.
  EXPECT_GT(disk_run->etime_s, remote_run->etime_s * 1.5)
      << "disk " << disk_run->etime_s << " vs remote " << remote_run->etime_s;
}

TEST(IntegrationTest, ReliabilityOrderingHoldsOnFft) {
  auto fft = MakeFft(24.0);
  auto network = std::make_shared<EthernetModel>();
  auto run_policy = [&](Policy policy, int servers) -> double {
    TestbedParams params;
    params.policy = policy;
    params.data_servers = servers;
    params.server_capacity_pages = 8192;
    params.network = network;
    auto bed = Testbed::Create(params);
    EXPECT_TRUE(bed.ok());
    RunConfig config;
    config.physical_frames = 2304;
    auto run = SimulateRun(*fft, &(*bed)->backend(), config);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->etime_s;
  };
  const double no_rel = run_policy(Policy::kNoReliability, 2);
  const double parity = run_policy(Policy::kParityLogging, 4);
  const double mirror = run_policy(Policy::kMirroring, 2);
  EXPECT_LT(no_rel, parity);
  EXPECT_LT(parity, mirror);
  // "PARITY LOGGING performs very close to NO RELIABILITY."
  EXPECT_LT(parity / no_rel, 1.25);
}

TEST(IntegrationTest, WorkloadSurvivesCrashWithTimingAttached) {
  auto filter = MakeFilter();
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 4;
  params.server_capacity_pages = 2048;
  params.network = std::make_shared<EthernetModel>();
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  // Run the first half of the workload, crash, run a fresh run to
  // completion on the same (recovered) backend.
  RunConfig config;
  config.physical_frames = 1024;  // 8 MB: FILTER pages heavily.
  auto first = SimulateRun(*filter, &(*bed)->backend(), config);
  ASSERT_TRUE(first.ok());
  (*bed)->CrashServer(1);
  TimeNs now = 0;
  ASSERT_TRUE((*bed)->parity_logging()->Recover(1, &now).ok());
  auto second = SimulateRun(*filter, &(*bed)->backend(), config);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE((*bed)->parity_logging()->CheckInvariants().ok());
}

// --- The pager over real TCP ---------------------------------------------------

struct TcpFixture {
  struct ForwardingHandler : MessageHandler {
    explicit ForwardingHandler(std::shared_ptr<MemoryServer> server)
        : server(std::move(server)) {}
    Message Handle(const Message& request) override { return server->Handle(request); }
    std::shared_ptr<MemoryServer> server;
  };

  std::vector<std::shared_ptr<MemoryServer>> servers;
  std::vector<std::unique_ptr<TcpServer>> listeners;

  Result<Cluster> Start(int count) {
    Cluster cluster;
    for (int i = 0; i < count; ++i) {
      MemoryServerParams params;
      params.name = "tcp-ws" + std::to_string(i);
      params.capacity_pages = 512;
      servers.push_back(std::make_shared<MemoryServer>(params));
      auto listener = TcpServer::Start(0, [server = servers.back()] {
        return std::unique_ptr<MessageHandler>(new ForwardingHandler(server));
      });
      if (!listener.ok()) {
        return listener.status();
      }
      auto transport = TcpTransport::Connect("127.0.0.1", (*listener)->port());
      if (!transport.ok()) {
        return transport.status();
      }
      listeners.push_back(std::move(*listener));
      cluster.AddPeer(params.name, std::move(*transport));
    }
    return cluster;
  }
};

TEST(IntegrationTest, ParityLoggingOverRealTcpWithCrash) {
  TcpFixture fixture;
  auto cluster = fixture.Start(4);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  RemotePagerParams pager_params;
  pager_params.alloc_extent_pages = 16;
  ParityLoggingBackend pager(std::move(*cluster), std::make_shared<NetworkFabric>(),
                             pager_params, /*parity_peer=*/3);
  PageBuffer page;
  for (uint64_t p = 0; p < 60; ++p) {
    FillPattern(page.span(), p);
    auto done = pager.PageOut(0, p, page.span());
    ASSERT_TRUE(done.ok()) << p << ": " << done.status().ToString();
  }
  // Kill one server process outright.
  fixture.servers[1]->Crash();
  fixture.listeners[1]->Shutdown();
  for (uint64_t p = 0; p < 60; ++p) {
    auto done = pager.PageIn(0, p, page.span());
    ASSERT_TRUE(done.ok()) << p << ": " << done.status().ToString();
    EXPECT_TRUE(CheckPattern(page.span(), p)) << p;
  }
  EXPECT_TRUE(pager.CheckInvariants().ok());
}

TEST(IntegrationTest, VmOverTcpCluster) {
  TcpFixture fixture;
  auto cluster = fixture.Start(3);
  ASSERT_TRUE(cluster.ok());
  RemotePagerParams pager_params;
  pager_params.alloc_extent_pages = 16;
  ParityLoggingBackend pager(std::move(*cluster), std::make_shared<NetworkFabric>(),
                             pager_params, /*parity_peer=*/2);
  VmParams vm_params;
  vm_params.virtual_pages = 64;
  vm_params.physical_frames = 8;
  PagedVm vm(vm_params, &pager);
  TimeNs now = 0;
  // Write a recognizable byte into each of 64 pages through 8 frames.
  for (uint64_t p = 0; p < 64; ++p) {
    const auto byte = static_cast<uint8_t>(p * 3 + 1);
    ASSERT_TRUE(vm.Write(&now, p * kPageSize, std::span<const uint8_t>(&byte, 1)).ok());
  }
  for (uint64_t p = 0; p < 64; ++p) {
    uint8_t byte = 0;
    ASSERT_TRUE(vm.Read(&now, p * kPageSize, std::span<uint8_t>(&byte, 1)).ok());
    EXPECT_EQ(byte, static_cast<uint8_t>(p * 3 + 1)) << p;
  }
  EXPECT_GT(vm.stats().pageouts, 40);
}

}  // namespace
}  // namespace rmp
