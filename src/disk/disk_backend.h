// DISK configuration: the baseline the paper compares against. Pages go to a
// local swap partition; the DiskModel charges RZ55 positioning and transfer
// time and the DiskStore keeps the real bytes.
//
// Swap blocks are allocated in first-pageout order (bump allocation), which
// reproduces the sequential layout an OSF/1 swap partition develops: pageout
// bursts stream, pageins that return in a different order pay seeks.

#ifndef SRC_DISK_DISK_BACKEND_H_
#define SRC_DISK_DISK_BACKEND_H_

#include <cstdint>
#include <unordered_map>

#include "src/core/paging_backend.h"
#include "src/disk/disk_model.h"
#include "src/disk/disk_store.h"
#include "src/sim/resource.h"

namespace rmp {

class DiskBackend final : public PagingBackend {
 public:
  static Result<DiskBackend> Create(const DiskParams& params, uint64_t blocks);

  DiskBackend(DiskBackend&&) = default;

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  const BackendStats& stats() const override { return stats_; }
  std::string Name() const override { return "DISK"; }

  const DiskModel& model() const { return model_; }
  DiskModel& model() { return model_; }
  DiskStore& store() { return store_; }

  // The disk as a queued device: WRITE_THROUGH shares it with this backend.
  Resource& arm() { return arm_; }

 private:
  DiskBackend(DiskModel model, DiskStore store)
      : model_(std::move(model)), store_(std::move(store)), arm_("disk-arm") {}

  Result<uint64_t> BlockFor(uint64_t page_id, bool allocate);

  DiskModel model_;
  DiskStore store_;
  Resource arm_;
  std::unordered_map<uint64_t, uint64_t> page_to_block_;
  BackendStats stats_;
};

}  // namespace rmp

#endif  // SRC_DISK_DISK_BACKEND_H_
