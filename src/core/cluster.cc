#include "src/core/cluster.h"

#include <algorithm>
#include <utility>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace rmp {
namespace {

// Request types that carry the client's map epoch in `aux` (DESIGN.md §16) —
// the ops the server's epoch gate examines. Control traffic stays unstamped
// so it keeps flowing while a client is mid-refresh.
bool EpochStamped(MessageType type) {
  switch (type) {
    case MessageType::kAllocRequest:
    case MessageType::kFreeRequest:
    case MessageType::kPageOut:
    case MessageType::kPageIn:
    case MessageType::kPageOutBatch:
    case MessageType::kPageInBatch:
    case MessageType::kDeltaPageOut:
    case MessageType::kXorMerge:
    case MessageType::kMigrate:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<uint64_t> ServerPeer::TakeSlot() {
  if (!returned_.empty()) {
    const uint64_t slot = returned_.back();
    returned_.pop_back();
    return slot;
  }
  while (!extents_.empty()) {
    SlotExtent& extent = extents_.back();
    if (extent.count == 0) {
      extents_.pop_back();
      continue;
    }
    const uint64_t slot = extent.first;
    ++extent.first;
    --extent.count;
    return slot;
  }
  return NotFoundError("slot pool empty on " + name_);
}

uint64_t ServerPeer::pooled_slots() const {
  uint64_t n = returned_.size();
  for (const SlotExtent& extent : extents_) {
    n += extent.count;
  }
  return n;
}

void ServerPeer::DropPool() {
  extents_.clear();
  returned_.clear();
}

Result<Message> ServerPeer::Call(Message request) {
  if (request.tenant == 0) {
    request.tenant = tenant_;
  }
  if (epoch_ != 0 && request.aux == 0 && EpochStamped(request.type)) {
    request.aux = epoch_;
  }
  // Trace ids ride only on the data ops that have server-side stages worth
  // measuring — the same set the epoch gate covers.
  if (trace_source_ != nullptr && EpochStamped(request.type)) {
    StampTraceId(&request, trace_source_->load(std::memory_order_relaxed));
  }
  return transport_->Call(request);
}

RpcFuture ServerPeer::CallAsync(Message request) {
  if (request.tenant == 0) {
    request.tenant = tenant_;
  }
  if (epoch_ != 0 && request.aux == 0 && EpochStamped(request.type)) {
    request.aux = epoch_;
  }
  if (trace_source_ != nullptr && EpochStamped(request.type)) {
    StampTraceId(&request, trace_source_->load(std::memory_order_relaxed));
  }
  return transport_->CallAsync(std::move(request));
}

void ServerPeer::AttachMetrics(MetricsRegistry* registry) {
  metrics_ = registry;
  metric_prefix_ = "peer." + name_ + ".";
  sent_counter_ = registry->GetCounter(metric_prefix_ + "pages_sent");
  fetched_counter_ = registry->GetCounter(metric_prefix_ + "pages_fetched");
  dead_marks_ = registry->GetCounter(metric_prefix_ + "dead_marks");
  reset_count_ = registry->GetCounter(metric_prefix_ + "resets");
  // Seed the registered counters with whatever accounting preceded the
  // attach, so the registry and the plain accessors agree.
  sent_counter_->Increment(pages_sent_);
  fetched_counter_->Increment(pages_fetched_);
}

void ServerPeer::Reset() {
  DropPool();
  stopped_ = false;
  no_new_extents_ = false;
  known_free_pages_ = 0;
  alive_ = true;
  pages_sent_ = 0;
  pages_fetched_ = 0;
  // A reset means a new server incarnation: zero the registered metrics so
  // the old life's traffic never mixes into the new one, then record that a
  // reset happened (the one counter that survives as a tally of lives).
  if (metrics_ != nullptr) {
    metrics_->ResetPrefix(metric_prefix_);
    reset_count_->Increment();
  }
}

Status ServerPeer::AllocExtent(uint64_t pages) {
  auto reply = Call(MakeAllocRequest(NextRequestId(), pages));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kAllocReply) {
    return ProtocolError("unexpected reply to ALLOC on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "alloc denied by " + name_);
  }
  AddExtent(SlotExtent{reply->slot, reply->count});
  // Client-side accounting: the grant consumed server memory, so most-free
  // selection stays meaningful between load refreshes.
  known_free_pages_ -= std::min(known_free_pages_, reply->count);
  return OkStatus();
}

RpcFuture ServerPeer::StartPageOut(uint64_t slot, std::span<const uint8_t> page) {
  return CallAsync(MakePageOut(NextRequestId(), slot, page));
}

Result<bool> ServerPeer::JoinPageOut(RpcFuture future) {
  auto reply = future.Wait();
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kPageOutAck) {
    return ProtocolError("unexpected reply to PAGEOUT on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "pageout rejected by " + name_);
  }
  NoteSent(1);
  return reply->advise_stop();
}

Result<bool> ServerPeer::PageOutTo(uint64_t slot, std::span<const uint8_t> page) {
  return JoinPageOut(StartPageOut(slot, page));
}

RpcFuture ServerPeer::StartPageIn(uint64_t slot) {
  return CallAsync(MakePageIn(NextRequestId(), slot));
}

Status ServerPeer::JoinPageIn(RpcFuture future, std::span<uint8_t> out) {
  if (out.size() != kPageSize) {
    return InvalidArgumentError("pagein target must be kPageSize");
  }
  auto reply = future.Wait();
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kPageInReply) {
    return ProtocolError("unexpected reply to PAGEIN on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "pagein failed on " + name_);
  }
  if (reply->payload.size() != kPageSize) {
    return ProtocolError("short pagein payload from " + name_);
  }
  std::copy(reply->payload.begin(), reply->payload.end(), out.begin());
  NoteFetched(1);
  return OkStatus();
}

Status ServerPeer::PageInFrom(uint64_t slot, std::span<uint8_t> out) {
  return JoinPageIn(StartPageIn(slot), out);
}

RpcFuture ServerPeer::StartPageOutBatch(std::span<const uint64_t> slots,
                                        std::span<const uint8_t> pages) {
  return CallAsync(MakePageOutBatch(NextRequestId(), slots, pages));
}

Result<bool> ServerPeer::JoinPageOutBatch(RpcFuture future, uint64_t expected) {
  auto reply = future.Wait();
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kPageOutBatchAck) {
    return ProtocolError("unexpected reply to PAGEOUT_BATCH on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(),
                  "batch pageout rejected by " + name_ + " at entry " +
                      std::to_string(reply->aux));
  }
  if (reply->count != expected) {
    return ProtocolError("partial batch ack from " + name_);
  }
  NoteSent(static_cast<int64_t>(expected));
  return reply->advise_stop();
}

Result<bool> ServerPeer::PageOutBatchTo(std::span<const uint64_t> slots,
                                        std::span<const uint8_t> pages) {
  return JoinPageOutBatch(StartPageOutBatch(slots, pages), slots.size());
}

RpcFuture ServerPeer::StartPageInBatch(std::span<const uint64_t> slots) {
  return CallAsync(MakePageInBatch(NextRequestId(), slots));
}

Status ServerPeer::JoinPageInBatch(RpcFuture future, uint64_t expected, std::span<uint8_t> out) {
  if (out.size() != expected * kPageSize) {
    return InvalidArgumentError("batch pagein target must be expected * kPageSize");
  }
  auto reply = future.Wait();
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kPageInBatchReply) {
    return ProtocolError("unexpected reply to PAGEIN_BATCH on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(),
                  "batch pagein failed on " + name_ + " at entry " + std::to_string(reply->aux));
  }
  if (reply->count != expected || reply->payload.size() != expected * kPageSize) {
    return ProtocolError("short batch pagein payload from " + name_);
  }
  std::copy(reply->payload.begin(), reply->payload.end(), out.begin());
  NoteFetched(static_cast<int64_t>(expected));
  return OkStatus();
}

Status ServerPeer::PageInBatchFrom(std::span<const uint64_t> slots, std::span<uint8_t> out) {
  return JoinPageInBatch(StartPageInBatch(slots), slots.size(), out);
}

Status ServerPeer::FreeOn(uint64_t first_slot, uint64_t count) {
  auto reply = Call(MakeFreeRequest(NextRequestId(), first_slot, count));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "free failed on " + name_);
  }
  return OkStatus();
}

Result<PageBuffer> ServerPeer::DeltaPageOutTo(uint64_t slot, std::span<const uint8_t> page) {
  Message request = MakePageOut(NextRequestId(), slot, page);
  request.type = MessageType::kDeltaPageOut;
  auto reply = Call(std::move(request));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "delta pageout rejected by " + name_);
  }
  if (reply->payload.size() != kPageSize) {
    return ProtocolError("short delta payload from " + name_);
  }
  NoteSent(1);
  return PageBuffer(std::span<const uint8_t>(reply->payload));
}

Status ServerPeer::XorMergeOn(uint64_t slot, std::span<const uint8_t> delta) {
  Message request = MakePageOut(NextRequestId(), slot, delta);
  request.type = MessageType::kXorMerge;
  auto reply = Call(std::move(request));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "xor merge rejected by " + name_);
  }
  NoteSent(1);
  return OkStatus();
}

Result<ServerPeer::LoadInfo> ServerPeer::QueryLoad() {
  auto reply = Call(MakeLoadQuery(NextRequestId()));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kLoadReport) {
    return ProtocolError("unexpected reply to LOAD_QUERY on " + name_);
  }
  LoadInfo info;
  info.free_pages = reply->count;
  info.total_pages = reply->aux;
  info.advise_stop = reply->advise_stop();
  known_free_pages_ = info.free_pages;
  return info;
}

Result<ServerPeer::HeartbeatInfo> ServerPeer::Heartbeat() {
  auto reply = Call(MakeHeartbeat(NextRequestId()));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kHeartbeatAck) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "heartbeat refused by " + name_);
    }
    return ProtocolError("unexpected reply to HEARTBEAT on " + name_);
  }
  HeartbeatInfo info;
  info.incarnation = reply->slot;
  info.free_pages = reply->count;
  info.total_pages = reply->aux;
  info.advise_stop = reply->advise_stop();
  known_free_pages_ = info.free_pages;
  return info;
}

Status ServerPeer::MigrateRead(uint64_t slot, std::span<uint8_t> out) {
  if (out.size() != kPageSize) {
    return InvalidArgumentError("migrate target must be kPageSize");
  }
  auto reply = Call(MakeMigrate(NextRequestId(), slot));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kMigrateReply) {
    return ProtocolError("unexpected reply to MIGRATE on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
    }
    return Status(reply->status_code(), "migrate failed on " + name_);
  }
  if (reply->payload.size() != kPageSize) {
    return ProtocolError("short migrate payload from " + name_);
  }
  std::copy(reply->payload.begin(), reply->payload.end(), out.begin());
  NoteFetched(1);
  return OkStatus();
}

Result<std::string> ServerPeer::QueryStats() {
  auto reply = Call(MakeStatsQuery(NextRequestId()));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kStatsReply) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "stats query refused by " + name_);
    }
    return ProtocolError("unexpected reply to STATS_QUERY on " + name_);
  }
  return std::string(IntrospectionJson(*reply));
}

Result<std::string> ServerPeer::DumpRemoteTrace() {
  auto reply = Call(MakeTraceDump(NextRequestId()));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kTraceDumpReply) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "trace dump refused by " + name_);
    }
    return ProtocolError("unexpected reply to TRACE_DUMP on " + name_);
  }
  return std::string(IntrospectionJson(*reply));
}

Result<std::string> ServerPeer::DumpServerSpans() {
  auto reply = Call(MakeTraceDump(NextRequestId(), /*document=*/1));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kTraceDumpReply) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "span dump refused by " + name_);
    }
    return ProtocolError("unexpected reply to TRACE_DUMP on " + name_);
  }
  return std::string(IntrospectionJson(*reply));
}

Result<std::string> ServerPeer::QueryEvents(uint64_t min_seq, uint64_t* next_seq,
                                            uint64_t* incarnation) {
  auto reply = Call(MakeEventsQuery(NextRequestId(), min_seq));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kEventsReply) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "events query refused by " + name_);
    }
    return ProtocolError("unexpected reply to EVENTS_QUERY on " + name_);
  }
  if (next_seq != nullptr) {
    *next_seq = reply->count;
  }
  if (incarnation != nullptr) {
    *incarnation = reply->slot;
  }
  return std::string(IntrospectionJson(*reply));
}

Result<ClusterMap> ServerPeer::QueryMap() {
  auto reply = Call(MakeMapQuery(NextRequestId()));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kMapReply) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "map query refused by " + name_);
    }
    return ProtocolError("unexpected reply to MAP_QUERY on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    return Status(reply->status_code(), "map query failed on " + name_);
  }
  return ClusterMap::Deserialize(std::span<const uint8_t>(reply->payload));
}

Status ServerPeer::PublishMap(uint64_t epoch, std::span<const uint8_t> map_bytes) {
  auto reply = Call(MakeMapPublish(NextRequestId(), epoch, map_bytes));
  if (!reply.ok()) {
    mark_dead();
    return reply.status();
  }
  if (reply->type != MessageType::kMapPublishAck) {
    if (reply->status_code() == ErrorCode::kUnavailable) {
      mark_dead();
      return Status(reply->status_code(), "map publish refused by " + name_);
    }
    return ProtocolError("unexpected reply to MAP_PUBLISH on " + name_);
  }
  if (reply->status_code() != ErrorCode::kOk) {
    return Status(reply->status_code(), "map publish rejected by " + name_);
  }
  return OkStatus();
}

Result<size_t> Cluster::MostPromising(bool refresh) {
  Result<size_t> best = NotFoundError("no usable server");
  uint64_t best_free = 0;
  for (size_t i = 0; i < peers_.size(); ++i) {
    ServerPeer& p = *peers_[i];
    if (!p.alive() || p.stopped()) {
      continue;
    }
    if (refresh) {
      auto load = p.QueryLoad();
      if (!load.ok()) {
        continue;
      }
      p.set_no_new_extents(load->advise_stop);
    }
    if (!p.usable()) {
      continue;
    }
    if (!best.ok() || p.known_free_pages() > best_free) {
      best = i;
      best_free = p.known_free_pages();
    }
  }
  return best;
}

Result<size_t> Cluster::NextUsable(size_t* cursor) const {
  if (peers_.empty()) {
    return NotFoundError("cluster is empty");
  }
  for (size_t step = 1; step <= peers_.size(); ++step) {
    const size_t i = (*cursor + step) % peers_.size();
    const ServerPeer& p = *peers_[i];
    if (p.usable()) {
      *cursor = i;
      return i;
    }
  }
  return NotFoundError("no usable server");
}

bool Cluster::AnyUsable() const {
  for (const auto& p : peers_) {
    if (p->usable()) {
      return true;
    }
  }
  return false;
}

}  // namespace rmp
