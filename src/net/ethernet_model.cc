#include "src/net/ethernet_model.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace rmp {

EthernetModel::EthernetModel(const EthernetParams& params) : params_(params) {
  assert(params_.bandwidth_mbps > 0.0);
  assert(params_.mtu_payload_bytes > 0);
  assert(params_.background_stations >= 0);
}

int EthernetModel::FramesForBytes(uint64_t bytes) const {
  if (bytes == 0) {
    return 1;  // A zero-payload request still occupies one frame.
  }
  return static_cast<int>((bytes + params_.mtu_payload_bytes - 1) / params_.mtu_payload_bytes);
}

DurationNs EthernetModel::RawTransferTime(uint64_t bytes) const {
  DurationNs total = 0;
  uint64_t remaining = bytes;
  const int frames = FramesForBytes(bytes);
  for (int i = 0; i < frames; ++i) {
    const uint64_t payload =
        remaining > params_.mtu_payload_bytes ? params_.mtu_payload_bytes : remaining;
    remaining -= payload;
    const uint64_t on_wire = payload + params_.frame_overhead_bytes;
    total += WireTime(on_wire, params_.bandwidth_mbps);
    total += params_.inter_frame_gap;
    total += params_.per_frame_host_cost;
  }
  return total;
}

double EthernetModel::ContentionEfficiency(int stations) const {
  assert(stations >= 1);
  if (stations == 1) {
    return 1.0;
  }
  // Slotted CSMA/CD with k saturated stations, each transmitting in a free
  // slot with the optimal probability p = 1/k: the per-slot acquisition
  // probability is A = (1 - 1/k)^(k-1), so (1-A)/A contention slots are
  // wasted per successful frame.
  const double k = static_cast<double>(stations);
  const double a = std::pow(1.0 - 1.0 / k, k - 1.0);
  const double wasted_slots = (1.0 - a) / a;
  // Mean frame time on the wire (full MTU frames dominate a paging workload).
  const double frame_time = static_cast<double>(
      WireTime(params_.mtu_payload_bytes + params_.frame_overhead_bytes, params_.bandwidth_mbps) +
      params_.inter_frame_gap);
  const double slot = static_cast<double>(params_.slot_time);
  return frame_time / (frame_time + wasted_slots * slot);
}

double EthernetModel::ClientShare() const {
  const int stations = params_.background_stations + 1;
  // The channel as a whole runs at ContentionEfficiency; saturated stations
  // split the surviving capacity evenly.
  return ContentionEfficiency(stations) / static_cast<double>(stations);
}

DurationNs EthernetModel::TransferTime(uint64_t bytes) const {
  const DurationNs raw = RawTransferTime(bytes);
  const double share = ClientShare();
  assert(share > 0.0);
  return static_cast<DurationNs>(static_cast<double>(raw) / share);
}

double EthernetModel::EffectiveBandwidthMbps() const {
  const DurationNs t = TransferTime(kPageSize);
  if (t <= 0) {
    return 0.0;
  }
  return static_cast<double>(kPageSize) * 8.0 / ToSeconds(t) / 1e6;
}

std::string EthernetModel::Name() const {
  char buf[64];
  if (params_.background_stations == 0) {
    std::snprintf(buf, sizeof(buf), "ethernet-%.0fMbps", params_.bandwidth_mbps);
  } else {
    std::snprintf(buf, sizeof(buf), "ethernet-%.0fMbps+%dbg", params_.bandwidth_mbps,
                  params_.background_stations);
  }
  return buf;
}

}  // namespace rmp
