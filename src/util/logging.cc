#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace rmp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, message.c_str());
}

}  // namespace rmp
