#include "src/util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace rmp {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Reset() { *this = RunningStats(); }

Histogram::Histogram(double lo, double hi, int buckets, bool log_scale)
    : lo_(lo),
      hi_(hi),
      log_scale_(log_scale),
      bucket_width_((hi - lo) / buckets),
      buckets_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
  if (log_scale_) {
    assert(lo > 0.0);
    log_lo_ = std::log(lo);
    log_width_ = (std::log(hi) - log_lo_) / buckets;
  }
}

double Histogram::BucketEdge(size_t i) const {
  if (log_scale_) {
    return std::exp(log_lo_ + static_cast<double>(i) * log_width_);
  }
  return lo_ + static_cast<double>(i) * bucket_width_;
}

void Histogram::Add(double x) {
  stats_.Add(x);
  int idx;
  if (log_scale_) {
    idx = x <= 0.0 ? 0 : static_cast<int>((std::log(x) - log_lo_) / log_width_);
  } else {
    idx = static_cast<int>((x - lo_) / bucket_width_);
  }
  idx = std::clamp(idx, 0, static_cast<int>(buckets_.size()) - 1);
  ++buckets_[idx];
}

double Histogram::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  const int64_t total = stats_.count();
  if (total == 0) {
    return 0.0;
  }
  // The extremes are tracked exactly; interpolating a one-sample bucket or
  // the p=100 edge would only manufacture error.
  if (p >= 100.0 || total == 1) {
    return stats_.max();
  }
  if (p <= 0.0) {
    return stats_.min();
  }
  const double target = p / 100.0 * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const int64_t in_bucket = buckets_[i];
    if (seen + in_bucket >= target && in_bucket > 0) {
      // Interpolate position within the bucket (geometrically when the
      // buckets are log-scale), then clamp: clamped out-of-range samples
      // sit in edge buckets whose nominal span does not contain them.
      const double frac = (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double value;
      if (log_scale_) {
        value = std::exp(log_lo_ + (static_cast<double>(i) + frac) * log_width_);
      } else {
        value = lo_ + (static_cast<double>(i) + frac) * bucket_width_;
      }
      return std::clamp(value, stats_.min(), stats_.max());
    }
    seen += in_bucket;
  }
  return stats_.max();
}

std::string Histogram::ToString() const {
  std::string out;
  int64_t peak = 1;
  for (int64_t b : buckets_) {
    peak = std::max(peak, b);
  }
  char line[160];
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    const int bar = static_cast<int>(50.0 * static_cast<double>(buckets_[i]) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8lld |%.*s\n", BucketEdge(i),
                  BucketEdge(i + 1), static_cast<long long>(buckets_[i]), bar,
                  "##################################################");
    out += line;
  }
  return out;
}

}  // namespace rmp
