#include "src/util/token_bucket.h"

#include <algorithm>

namespace rmp {
namespace {
// One token = one page; fractional accrual is tracked in billionths so the
// pacing math is exact (rate is pages/sec, time is integer nanoseconds).
constexpr uint64_t kTokenScale = 1'000'000'000ull;
}  // namespace

TokenBucket::TokenBucket(uint64_t rate_pages_per_sec, uint64_t burst_pages)
    : rate_(rate_pages_per_sec),
      burst_(std::max<uint64_t>(1, burst_pages)),
      tokens_(burst_) {}  // Starts full: the first burst is free.

void TokenBucket::Refill(TimeNs now) {
  if (now <= last_) {
    return;
  }
  const uint64_t delta = static_cast<uint64_t>(now - last_);
  last_ = now;
  const unsigned __int128 acc = static_cast<unsigned __int128>(rate_) * delta + frac_;
  // The gained count can overflow u64 (max rate × max elapsed), so the cap
  // comparison stays in 128-bit; only a sub-burst gain is narrowed.
  const unsigned __int128 gained = acc / kTokenScale;
  frac_ = static_cast<uint64_t>(acc % kTokenScale);
  if (gained >= burst_ - tokens_) {
    tokens_ = burst_;
    frac_ = 0;  // A full bucket does not bank further accrual.
  } else {
    tokens_ += static_cast<uint64_t>(gained);
  }
}

uint64_t TokenBucket::TakeUpTo(uint64_t want, TimeNs now) {
  if (rate_ == 0) {
    return want;
  }
  Refill(now);
  const uint64_t take = std::min(want, tokens_);
  tokens_ -= take;
  return take;
}

void TokenBucket::Refund(uint64_t tokens) {
  if (rate_ == 0) {
    return;
  }
  tokens_ = std::min(burst_, tokens_ + tokens);
}

TimeNs TokenBucket::NextAvailable(TimeNs now) {
  if (rate_ == 0) {
    return now;
  }
  Refill(now);
  if (tokens_ >= 1) {
    return now;
  }
  const uint64_t needed = kTokenScale - frac_;
  const uint64_t wait_ns = (needed + rate_ - 1) / rate_;
  return now + static_cast<TimeNs>(wait_ns);
}

uint64_t TokenBucket::Available(TimeNs now) {
  if (rate_ == 0) {
    return UINT64_MAX;
  }
  Refill(now);
  return tokens_;
}

}  // namespace rmp
