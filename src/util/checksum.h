// CRC32 (IEEE 802.3 polynomial) used to guard page payloads on the wire and
// to verify reconstructed pages after recovery.

#ifndef SRC_UTIL_CHECKSUM_H_
#define SRC_UTIL_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace rmp {

// One-shot CRC32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: crc = Crc32Update(crc, chunk) starting from Crc32Init().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> data);
uint32_t Crc32Finalize(uint32_t crc);

}  // namespace rmp

#endif  // SRC_UTIL_CHECKSUM_H_
