#include "src/util/tracing.h"

#include <utility>

#include "src/util/logging.h"

namespace rmp {
namespace {

// Latencies span sub-µs control hops to multi-second degraded recoveries:
// log-scale buckets from 100 ns to 10 s keep both ends resolvable.
HistogramOptions StageHistogramOptions() {
  HistogramOptions options;
  options.lo = 100.0;
  options.hi = 10e9;
  options.buckets = 64;
  options.log_scale = true;
  return options;
}

}  // namespace

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kPageOut:
      return "pageout";
    case TraceOp::kPageIn:
      return "pagein";
  }
  return "unknown";
}

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kPolicy:
      return "policy";
    case TraceStage::kBackoff:
      return "backoff";
    case TraceStage::kQueue:
      return "queue";
    case TraceStage::kWire:
      return "wire";
    case TraceStage::kService:
      return "service";
    case TraceStage::kParity:
      return "parity";
    case TraceStage::kDisk:
      return "disk";
    case TraceStage::kServerQueue:
      return "srv_queue";
    case TraceStage::kServerService:
      return "srv_service";
    case TraceStage::kServerStore:
      return "srv_store";
    case TraceStage::kServerDisk:
      return "srv_disk";
  }
  return "unknown";
}

Status ApplyTraceConfig(const Config& config, PageTracerOptions* options) {
  auto ring = config.GetInt("trace.ring", static_cast<int64_t>(options->ring_capacity));
  RMP_RETURN_IF_ERROR(ring.status());
  if (*ring < 0) {
    return InvalidArgumentError("trace.ring must be >= 0");
  }
  options->ring_capacity = static_cast<size_t>(*ring);
  auto slow_us = config.GetInt("trace.slow_op_us", options->slow_op_ns / 1000);
  RMP_RETURN_IF_ERROR(slow_us.status());
  if (*slow_us < 0) {
    return InvalidArgumentError("trace.slow_op_us must be >= 0");
  }
  options->slow_op_ns = *slow_us * 1000;
  auto sample = config.GetInt("trace.sample_per_1k", options->sample_per_1k);
  RMP_RETURN_IF_ERROR(sample.status());
  if (*sample < 0 || *sample > 1000) {
    return InvalidArgumentError("trace.sample_per_1k must be in [0, 1000]");
  }
  options->sample_per_1k = static_cast<int>(*sample);
  auto spans = config.GetInt("trace.max_spans", static_cast<int64_t>(options->max_spans));
  RMP_RETURN_IF_ERROR(spans.status());
  if (*spans < 1) {
    return InvalidArgumentError("trace.max_spans must be >= 1");
  }
  options->max_spans = static_cast<size_t>(*spans);
  return OkStatus();
}

DurationNs TraceRecord::StageTime(TraceStage stage) const {
  DurationNs total_ns = 0;
  for (const TraceSpan& span : spans) {
    if (span.stage == stage) {
      total_ns += span.duration;
    }
  }
  return total_ns;
}

PageTracer::PageTracer(MetricsRegistry* registry, const PageTracerOptions& options)
    : options_(options), registry_(registry), ring_(options.ring_capacity) {
  enabled_.store(options.sample_per_1k > 0, std::memory_order_relaxed);
  if (registry_ != nullptr) {
    for (int s = 0; s < kNumTraceStages; ++s) {
      const std::string key =
          std::string("trace.stage.") + TraceStageName(static_cast<TraceStage>(s)) + "_ns";
      stage_histograms_[static_cast<size_t>(s)] =
          registry_->GetHistogram(key, StageHistogramOptions());
    }
    for (int o = 0; o < kNumTraceOps; ++o) {
      const std::string base = std::string("trace.") + TraceOpName(static_cast<TraceOp>(o));
      total_histograms_[static_cast<size_t>(o)] =
          registry_->GetHistogram(base + ".total_ns", StageHistogramOptions());
      op_counters_[static_cast<size_t>(o)] = registry_->GetCounter(base + ".count");
    }
    slow_counter_ = registry_->GetCounter("trace.slow_ops");
    dropped_counter_ = registry_->GetCounter("trace.dropped");
  }
}

uint64_t PageTracer::Begin(TraceOp op, uint64_t page_id, TimeNs now) {
  // Tracer hard-off (sample_per_1k == 0): one relaxed load, no lock — the
  // provably-zero-overhead configuration (DESIGN.md §17).
  if (!enabled_.load(std::memory_order_relaxed)) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_ || options_.ring_capacity == 0) {
    return 0;
  }
  // Head sampling: a deterministic rotation admits sample_per_1k of every
  // 1000 operations offered, so runs stay bit-reproducible.
  ++sample_seq_;
  if (options_.sample_per_1k < 1000 &&
      static_cast<int>(sample_seq_ % 1000) >= options_.sample_per_1k) {
    ++sampled_out_;
    return 0;
  }
  active_ = true;
  current_ = TraceRecord();
  current_.id = next_id_++;
  current_.op = op;
  current_.page_id = page_id;
  current_.start = now;
  current_extra_spans_ = 0;
  wire_id_.store(static_cast<uint32_t>(current_.id), std::memory_order_relaxed);
  return current_.id;
}

void PageTracer::Span(TraceStage stage, TimeNs start, TimeNs end) {
  if (end <= start || !enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  HistogramMetric* histogram = stage_histograms_[static_cast<size_t>(stage)];
  if (histogram != nullptr) {
    histogram->Observe(static_cast<double>(end - start));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) {
    return;
  }
  if (current_.spans.size() >= options_.max_spans) {
    ++current_extra_spans_;
    return;
  }
  current_.spans.push_back(TraceSpan{stage, start, end - start});
}

void PageTracer::AttachServerSpan(uint32_t trace_id, TraceStage stage, TimeNs start,
                                  DurationNs duration) {
  if (trace_id == 0 || duration <= 0) {
    return;
  }
  HistogramMetric* histogram = stage_histograms_[static_cast<size_t>(stage)];
  if (histogram != nullptr) {
    histogram->Observe(static_cast<double>(duration));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // The matching record is usually recent: scan the ring newest-first.
  for (size_t i = 0; i < ring_size_; ++i) {
    const size_t index = (ring_next_ + ring_.size() - 1 - i) % ring_.size();
    TraceRecord& record = ring_[index];
    if (static_cast<uint32_t>(record.id) != trace_id) {
      continue;
    }
    if (record.spans.size() < options_.max_spans) {
      record.spans.push_back(TraceSpan{stage, start, duration});
    }
    return;
  }
}

void PageTracer::End(uint64_t id, TimeNs now, bool ok) {
  if (id == 0) {
    return;
  }
  TraceRecord finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!active_ || current_.id != id) {
      return;
    }
    active_ = false;
    wire_id_.store(0, std::memory_order_relaxed);
    current_.total = now - current_.start;
    current_.ok = ok;
    if (current_extra_spans_ > 0) {
      RMP_LOG(kDebug) << "trace " << id << " overflowed span cap; " << current_extra_spans_
                      << " spans uncounted in record";
    }
    finished = std::move(current_);
    ++total_traces_;
    PushLocked(TraceRecord(finished));
    if (options_.slow_op_ns > 0 && finished.total >= options_.slow_op_ns) {
      ++slow_ops_;
    }
  }
  const size_t op_index = static_cast<size_t>(finished.op);
  if (slo_ != nullptr) {
    slo_->Record(finished.total);
  }
  if (total_histograms_[op_index] != nullptr) {
    total_histograms_[op_index]->Observe(static_cast<double>(finished.total));
  }
  if (op_counters_[op_index] != nullptr) {
    op_counters_[op_index]->Increment();
  }
  if (options_.slow_op_ns > 0 && finished.total >= options_.slow_op_ns) {
    if (slow_counter_ != nullptr) {
      slow_counter_->Increment();
    }
    RMP_LOG(kWarning) << "slow " << TraceOpName(finished.op) << " page=" << finished.page_id
                      << " trace=" << finished.id << " took " << finished.total
                      << " ns (threshold " << options_.slow_op_ns << " ns), "
                      << finished.spans.size() << " spans, ok=" << (finished.ok ? 1 : 0);
  }
}

void PageTracer::PushLocked(TraceRecord&& record) {
  if (ring_.empty()) {
    return;
  }
  if (ring_size_ == ring_.size()) {
    ++dropped_;
    if (dropped_counter_ != nullptr) {
      dropped_counter_->Increment();
    }
  } else {
    ++ring_size_;
  }
  ring_[ring_next_] = std::move(record);
  ring_next_ = (ring_next_ + 1) % ring_.size();
}

bool PageTracer::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

size_t PageTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_size_;
}

int64_t PageTracer::total_traces() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_traces_;
}

int64_t PageTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

int64_t PageTracer::slow_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slow_ops_;
}

int64_t PageTracer::sampled_out() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sampled_out_;
}

void PageTracer::AttachSlo(SloTracker* slo) {
  std::lock_guard<std::mutex> lock(mutex_);
  slo_ = slo;
}

void PageTracer::Reconfigure(const PageTracerOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  ring_.assign(options.ring_capacity, TraceRecord());
  ring_next_ = 0;
  ring_size_ = 0;
  active_ = false;
  current_ = TraceRecord();
  wire_id_.store(0, std::memory_order_relaxed);
  enabled_.store(options.sample_per_1k > 0, std::memory_order_relaxed);
}

std::vector<TraceRecord> PageTracer::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_size_);
  // Oldest record sits at ring_next_ when the ring is full, else at 0.
  const size_t begin = ring_size_ == ring_.size() ? ring_next_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

std::string PageTracer::ToJson() const {
  const std::vector<TraceRecord> records = Records();
  std::string out = "[";
  for (size_t r = 0; r < records.size(); ++r) {
    const TraceRecord& record = records[r];
    if (r > 0) {
      out += ",";
    }
    out += "{\"id\":" + std::to_string(record.id);
    out += ",\"op\":\"" + std::string(TraceOpName(record.op)) + "\"";
    out += ",\"page\":" + std::to_string(record.page_id);
    out += ",\"start\":" + std::to_string(record.start);
    out += ",\"total\":" + std::to_string(record.total);
    out += ",\"ok\":" + std::string(record.ok ? "true" : "false");
    out += ",\"spans\":[";
    for (size_t s = 0; s < record.spans.size(); ++s) {
      const TraceSpan& span = record.spans[s];
      if (s > 0) {
        out += ",";
      }
      out += "{\"stage\":\"" + std::string(TraceStageName(span.stage)) + "\"";
      out += ",\"start\":" + std::to_string(span.start);
      out += ",\"dur\":" + std::to_string(span.duration) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

void PageTracer::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = false;
  current_ = TraceRecord();
  ring_.assign(ring_.size(), TraceRecord());
  ring_next_ = 0;
  ring_size_ = 0;
  total_traces_ = 0;
  dropped_ = 0;
  slow_ops_ = 0;
  sampled_out_ = 0;
  wire_id_.store(0, std::memory_order_relaxed);
}

SpanRing::SpanRing(size_t capacity) : ring_(capacity) {}

void SpanRing::Record(uint32_t trace_id, TraceStage stage, TimeNs start, DurationNs duration) {
  if (trace_id == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) {
    return;
  }
  if (ring_size_ == ring_.size()) {
    ++dropped_;
  } else {
    ++ring_size_;
  }
  ring_[ring_next_] = ServerSpan{trace_id, stage, start, duration};
  ring_next_ = (ring_next_ + 1) % ring_.size();
}

std::vector<ServerSpan> SpanRing::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ServerSpan> out;
  out.reserve(ring_size_);
  const size_t begin = ring_size_ == ring_.size() ? ring_next_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  return out;
}

std::vector<ServerSpan> SpanRing::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ServerSpan> out;
  out.reserve(ring_size_);
  const size_t begin = ring_size_ == ring_.size() ? ring_next_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(begin + i) % ring_.size()]);
  }
  ring_next_ = 0;
  ring_size_ = 0;
  return out;
}

size_t SpanRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_size_;
}

int64_t SpanRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

size_t SpanRing::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void SpanRing::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(capacity, ServerSpan());
  ring_next_ = 0;
  ring_size_ = 0;
}

void SpanRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_next_ = 0;
  ring_size_ = 0;
  dropped_ = 0;
}

std::string SpanRing::ToJson() const {
  const std::vector<ServerSpan> spans = Spans();
  std::string out = "[";
  for (size_t s = 0; s < spans.size(); ++s) {
    const ServerSpan& span = spans[s];
    if (s > 0) {
      out += ",";
    }
    out += "{\"trace\":" + std::to_string(span.trace_id);
    out += ",\"stage\":\"" + std::string(TraceStageName(span.stage)) + "\"";
    out += ",\"start\":" + std::to_string(span.start);
    out += ",\"dur\":" + std::to_string(span.duration) + "}";
  }
  out += "]";
  return out;
}

ServerTraceScratch& ServerScratch() {
  thread_local ServerTraceScratch scratch;
  return scratch;
}

}  // namespace rmp
