#include "src/vm/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/testbed.h"
#include "src/model/run_simulator.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

std::string TempTracePath(const char* tag) {
  return ::testing::TempDir() + "/rmp_trace_" + tag + ".bin";
}

TEST(TraceTest, RecordsAccessesFromVm) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 1;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  VmParams vm_params;
  vm_params.virtual_pages = 16;
  vm_params.physical_frames = 4;
  PagedVm vm(vm_params, &(*bed)->backend());
  AccessTrace trace;
  trace.AttachTo(&vm);
  TimeNs now = 0;
  ASSERT_TRUE(vm.Touch(&now, 3, true).ok());
  ASSERT_TRUE(vm.Touch(&now, 7, false).ok());
  vm.SetAccessObserver(nullptr);
  ASSERT_TRUE(vm.Touch(&now, 9, true).ok());  // Not recorded.
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.vpage(0), 3u);
  EXPECT_TRUE(trace.is_write(0));
  EXPECT_EQ(trace.vpage(1), 7u);
  EXPECT_FALSE(trace.is_write(1));
  EXPECT_EQ(trace.MaxPageExclusive(), 8u);
  EXPECT_EQ(trace.CountWrites(), 1);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  AccessTrace trace;
  for (uint64_t i = 0; i < 1000; ++i) {
    trace.Add(i * 7 % 113, i % 3 == 0);
  }
  const std::string path = TempTracePath("roundtrip");
  ASSERT_TRUE(trace.Save(path).ok());
  auto loaded = AccessTrace::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == trace);
  std::remove(path.c_str());
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  AccessTrace trace;
  const std::string path = TempTracePath("empty");
  ASSERT_TRUE(trace.Save(path).ok());
  auto loaded = AccessTrace::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(TraceTest, CorruptFileDetected) {
  AccessTrace trace;
  trace.Add(1, true);
  trace.Add(2, false);
  const std::string path = TempTracePath("corrupt");
  ASSERT_TRUE(trace.Save(path).ok());
  // Flip one byte in the events region.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16 + 3, SEEK_SET);
  std::fputc(0x5a, f);
  std::fclose(f);
  auto loaded = AccessTrace::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TraceTest, TruncatedFileDetected) {
  AccessTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.Add(static_cast<uint64_t>(i), false);
  }
  const std::string path = TempTracePath("truncated");
  ASSERT_TRUE(trace.Save(path).ok());
  ASSERT_EQ(::truncate(path.c_str(), 24), 0);
  auto loaded = AccessTrace::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TraceTest, NotATraceFileDetected) {
  const std::string path = TempTracePath("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("definitely not a trace", f);
  std::fclose(f);
  auto loaded = AccessTrace::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

// The headline capability: record a workload's reference stream once, then
// replay it against a different policy and get the identical fault stream.
TEST(TraceTest, RecordedWorkloadReplaysIdentically) {
  const auto fft = MakeFft(2.0);  // Small: ~256 pages.
  // Record against NO_RELIABILITY.
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 512;
  auto record_bed = Testbed::Create(params);
  ASSERT_TRUE(record_bed.ok());
  VmParams vm_params;
  vm_params.virtual_pages = PagesForBytes(fft->info().data_bytes) + 16;
  vm_params.physical_frames = 64;
  AccessTrace trace;
  VmStats recorded_stats;
  {
    PagedVm vm(vm_params, &(*record_bed)->backend());
    trace.AttachTo(&vm);
    TimeNs now = 0;
    ASSERT_TRUE(fft->Run(&vm, &now).ok());
    recorded_stats = vm.stats();
  }
  ASSERT_EQ(static_cast<int64_t>(trace.size()), fft->access_count());

  // Replay against PARITY_LOGGING: same reference stream, same fault counts
  // (replacement is deterministic), different backend underneath.
  TestbedParams replay_params;
  replay_params.policy = Policy::kParityLogging;
  replay_params.data_servers = 4;
  replay_params.server_capacity_pages = 512;
  auto replay_bed = Testbed::Create(replay_params);
  ASSERT_TRUE(replay_bed.ok());
  PagedVm replay_vm(vm_params, &(*replay_bed)->backend());
  TimeNs now = 0;
  ASSERT_TRUE(trace.Replay(&replay_vm, &now, fft->info().user_seconds).ok());
  EXPECT_EQ(replay_vm.stats().accesses, recorded_stats.accesses);
  EXPECT_EQ(replay_vm.stats().faults, recorded_stats.faults);
  EXPECT_EQ(replay_vm.stats().pageouts, recorded_stats.pageouts);
  EXPECT_EQ(replay_vm.stats().pageins, recorded_stats.pageins);
}

}  // namespace
}  // namespace rmp
