#include "src/disk/disk_backend.h"

#include <algorithm>

namespace rmp {

Result<DiskBackend> DiskBackend::Create(const DiskParams& params, uint64_t blocks) {
  DiskParams sized = params;
  sized.total_blocks = blocks;
  auto store = DiskStore::Create(blocks);
  if (!store.ok()) {
    return store.status();
  }
  return DiskBackend(DiskModel(sized), std::move(*store));
}

Result<uint64_t> DiskBackend::BlockFor(uint64_t page_id, bool allocate) {
  auto it = page_to_block_.find(page_id);
  if (it != page_to_block_.end()) {
    return it->second;
  }
  if (!allocate) {
    return NotFoundError("page " + std::to_string(page_id) + " never paged out");
  }
  RMP_ASSIGN_OR_RETURN(const uint64_t block, store_.Allocate(1));
  page_to_block_.emplace(page_id, block);
  return block;
}

Result<TimeNs> DiskBackend::PageOut(TimeNs now, uint64_t page_id,
                                    std::span<const uint8_t> data) {
  RMP_ASSIGN_OR_RETURN(const uint64_t block, BlockFor(page_id, /*allocate=*/true));
  RMP_RETURN_IF_ERROR(store_.Write(block, data));
  const DurationNs service = model_.Access(block, 1, /*is_write=*/true);
  const TimeNs done = arm_.Serve(now, service);
  // Write-behind: the process resumes once the page is queued, unless the
  // arm has fallen more than writeback_lag behind. Later pageins still queue
  // behind these writes on the arm Resource.
  const TimeNs unblock = std::max(now, done - model_.params().writeback_lag);
  ++stats_.pageouts;
  ++stats_.disk_transfers;
  stats_.disk_time += unblock - now;
  stats_.paging_time += unblock - now;
  return unblock;
}

Result<TimeNs> DiskBackend::PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) {
  RMP_ASSIGN_OR_RETURN(const uint64_t block, BlockFor(page_id, /*allocate=*/false));
  RMP_RETURN_IF_ERROR(store_.Read(block, out));
  const DurationNs service = model_.Access(block, 1, /*is_write=*/false);
  const TimeNs done = arm_.Serve(now, service);
  ++stats_.pageins;
  ++stats_.disk_transfers;
  stats_.disk_time += done - now;
  stats_.paging_time += done - now;
  return done;
}

}  // namespace rmp
