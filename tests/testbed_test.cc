#include "src/core/testbed.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

TEST(TestbedTest, BuildsEveryPolicy) {
  for (Policy policy : {Policy::kNoReliability, Policy::kMirroring, Policy::kBasicParity,
                        Policy::kParityLogging, Policy::kWriteThrough, Policy::kDisk}) {
    TestbedParams params;
    params.policy = policy;
    params.data_servers = 3;
    auto bed = Testbed::Create(params);
    ASSERT_TRUE(bed.ok()) << PolicyName(policy) << ": " << bed.status().ToString();
    EXPECT_EQ((*bed)->backend().Name(), PolicyName(policy));
  }
}

TEST(TestbedTest, ParityPoliciesGetExtraServer) {
  TestbedParams params;
  params.data_servers = 4;
  params.policy = Policy::kParityLogging;
  auto pl = Testbed::Create(params);
  ASSERT_TRUE(pl.ok());
  EXPECT_EQ((*pl)->server_count(), 5u);
  params.policy = Policy::kMirroring;
  auto mirror = Testbed::Create(params);
  ASSERT_TRUE(mirror.ok());
  EXPECT_EQ((*mirror)->server_count(), 4u);
}

TEST(TestbedTest, SpareAddsOneMore) {
  TestbedParams params;
  params.policy = Policy::kBasicParity;
  params.data_servers = 3;
  params.with_spare = true;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  EXPECT_EQ((*bed)->server_count(), 5u);  // 3 data + parity + spare.
}

TEST(TestbedTest, PolicyViewsMatch) {
  TestbedParams params;
  params.policy = Policy::kParityLogging;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  EXPECT_NE((*bed)->parity_logging(), nullptr);
  EXPECT_EQ((*bed)->mirroring(), nullptr);
  EXPECT_EQ((*bed)->no_reliability(), nullptr);
}

TEST(TestbedTest, CrashAndRestartCycle) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 1;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  (*bed)->CrashServer(0);
  EXPECT_TRUE((*bed)->server(0).crashed());
  EXPECT_FALSE((*bed)->transport(0).connected());
  (*bed)->RestartServer(0);
  EXPECT_FALSE((*bed)->server(0).crashed());
  EXPECT_TRUE((*bed)->transport(0).connected());
}

TEST(TestbedTest, ZeroServersRejectedForRemotePolicies) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 0;
  EXPECT_FALSE(Testbed::Create(params).ok());
}

TEST(TestbedTest, PolicyNamesComplete) {
  EXPECT_EQ(PolicyName(Policy::kNoReliability), "NO_RELIABILITY");
  EXPECT_EQ(PolicyName(Policy::kMirroring), "MIRRORING");
  EXPECT_EQ(PolicyName(Policy::kBasicParity), "BASIC_PARITY");
  EXPECT_EQ(PolicyName(Policy::kParityLogging), "PARITY_LOGGING");
  EXPECT_EQ(PolicyName(Policy::kWriteThrough), "WRITE_THROUGH");
  EXPECT_EQ(PolicyName(Policy::kDisk), "DISK");
}

}  // namespace
}  // namespace rmp
