// Repair pacing bench: foreground pagein latency vs. token-bucket rate.
//
// A mirrored cluster on the paper's 10 Mbit/s shared Ethernet loses one
// server; the RepairCoordinator resilvers the lost replicas in the
// background while a foreground client keeps faulting pages in at a fixed
// arrival rate. Both traffic classes share the wire, so every repair chunk
// delays the foreground faults that arrive behind it — the tradeoff the
// token bucket exists to bound. Sweeping the bucket rate shows it directly:
// unpaced repair finishes fastest but pushes foreground p99 to whole repair
// bursts; a modest rate bounds p99 near the bare service time while the
// resilver stretches out proportionally.
//
// Emits BENCH_repair_throughput.json rows: foreground p50/p99 (ms), repair
// completion time (s), and pages resilvered, one set per bucket rate.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace rmp {
namespace {

constexpr uint64_t kPages = 256;       // Working set preloaded before the crash.
constexpr uint64_t kSeed = 17;
constexpr DurationNs kArrival = Millis(20);  // Foreground fault every 20 ms.
constexpr size_t kMaxSamples = 4000;      // Safety bound on the drive loop.

struct RateResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double repair_elapsed_s = 0;
  int64_t pages_resilvered = 0;
  size_t samples = 0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t index = std::min(values.size() - 1,
                                static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[index];
}

Result<RateResult> RunAtRate(uint64_t rate_pages_per_sec) {
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 1024;
  params.network = PaperEthernet();
  auto made = Testbed::Create(params);
  if (!made.ok()) {
    return made.status();
  }
  auto bed = std::move(*made);
  RepairParams repair_params;
  repair_params.repair_pages_per_sec = rate_pages_per_sec;
  repair_params.repair_burst_pages = 8;
  RMP_RETURN_IF_ERROR(bed->EnableSelfHealing(HealthParams(), repair_params));

  auto loaded = bed->Preload(kPages, kSeed);
  if (!loaded.ok()) {
    return loaded.status();
  }
  TimeNs now = *loaded;
  auto pumped = bed->repair()->Pump(now);  // Baseline heartbeat round.
  if (!pumped.ok()) {
    return pumped.status();
  }
  now = *pumped;

  bed->CrashServer(1);
  const TimeNs crash_time = now;

  // Drive loop: a foreground fault arrives every kArrival; the repair pump
  // runs at that instant first (its chunk occupies the shared wire), then
  // the fault is served. Latency is measured from arrival to completion, so
  // it includes the time spent queued behind the repair burst.
  std::vector<double> latencies_ms;
  PageBuffer buffer;
  TimeNs arrival = now + kArrival;
  uint64_t next_page = 0;
  TimeNs repair_done_at = 0;
  size_t samples_at_done = 0;
  while (latencies_ms.size() < kMaxSamples) {
    // The repair runs one bucket grant at the current instant (or stalls on
    // an empty bucket)...
    pumped = bed->repair()->Pump(now);
    if (!pumped.ok()) {
      return pumped.status();
    }
    now = *pumped;
    if (repair_done_at == 0 && bed->repair()->idle() &&
        bed->repair()->stats().repairs_completed > 0) {
      repair_done_at = now;
      samples_at_done = latencies_ms.size();
    }
    // ...then every foreground fault that arrived while the wire carried the
    // chunk is served behind it (and behind each other); when none are
    // backlogged, the next arrival is served on time, which also advances the
    // clock the bucket refills against.
    do {
      auto done = bed->backend().PageIn(std::max(now, arrival), next_page, buffer.span());
      if (!done.ok()) {
        return done.status();
      }
      latencies_ms.push_back(ToMillis(*done - arrival));
      now = *done;
      next_page = (next_page + 1) % kPages;
      arrival += kArrival;
    } while (arrival <= now);
    if (repair_done_at != 0 && latencies_ms.size() >= samples_at_done + 32) {
      break;  // Repair finished and the post-repair tail is sampled.
    }
  }
  if (repair_done_at == 0) {
    return InternalError("repair did not converge within the sample budget");
  }

  RateResult result;
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  result.repair_elapsed_s = ToSeconds(repair_done_at - crash_time);
  result.pages_resilvered = bed->repair()->stats().pages_resilvered;
  result.samples = latencies_ms.size();
  return result;
}

}  // namespace
}  // namespace rmp

int main() {
  using namespace rmp;
  // Unpaced repair sustains ~20 pages/s against this wire and foreground
  // load, so the bucket only bites below that knee; 0 = unpaced baseline.
  const uint64_t rates[] = {0, 5, 10, 20};
  std::printf("repair pacing vs foreground pagein latency (MIRRORING, 1 crash, %llu pages)\n",
              static_cast<unsigned long long>(kPages));
  std::printf("%-12s %10s %10s %12s %10s\n", "bucket", "p50 ms", "p99 ms", "repair s", "pages");
  for (const uint64_t rate : rates) {
    auto result = RunAtRate(rate);
    if (!result.ok()) {
      std::fprintf(stderr, "rate %llu: %s\n", static_cast<unsigned long long>(rate),
                   std::string(result.status().message()).c_str());
      return 1;
    }
    const std::string config =
        rate == 0 ? "mirroring/unpaced" : "mirroring/rate" + std::to_string(rate);
    std::printf("%-12s %10.2f %10.2f %12.2f %10lld\n", config.c_str(), result->p50_ms,
                result->p99_ms, result->repair_elapsed_s,
                static_cast<long long>(result->pages_resilvered));
    EmitBenchResult("repair_throughput", config, "foreground_p50", result->p50_ms, "ms");
    EmitBenchResult("repair_throughput", config, "foreground_p99", result->p99_ms, "ms");
    EmitBenchResult("repair_throughput", config, "repair_elapsed", result->repair_elapsed_s, "s");
    EmitBenchResult("repair_throughput", config, "pages_resilvered",
                    static_cast<double>(result->pages_resilvered), "pages");
  }
  return 0;
}
