#include "src/model/extrapolation.h"

#include <algorithm>

namespace rmp {

TimeDecomposition Decompose(const RunResult& run, double protocol_s_per_transfer) {
  TimeDecomposition d;
  d.utime_s = run.utime_s;
  d.systime_s = run.systime_s;
  d.inittime_s = run.inittime_s;
  d.page_transfers = run.backend.page_transfers;
  d.pptime_s = static_cast<double>(d.page_transfers) * protocol_s_per_transfer;
  d.btime_s = std::max(
      0.0, run.etime_s - d.utime_s - d.systime_s - d.inittime_s - d.pptime_s);
  return d;
}

double ExpectedElapsedSeconds(const TimeDecomposition& d, double bandwidth_factor) {
  return d.utime_s + d.systime_s + d.inittime_s + d.pptime_s + d.btime_s / bandwidth_factor;
}

double AllMemorySeconds(const TimeDecomposition& d) {
  return d.utime_s + d.systime_s + d.inittime_s;
}

}  // namespace rmp
