#include "src/util/slo.h"

#include <algorithm>

namespace rmp {

Status ApplySloConfig(const Config& config, SloParams* params) {
  auto target_ms = config.GetDouble("slo.target_ms",
                                    static_cast<double>(params->target) / 1e6);
  RMP_RETURN_IF_ERROR(target_ms.status());
  if (*target_ms < 0) {
    return InvalidArgumentError("slo.target_ms must be >= 0");
  }
  params->target = static_cast<DurationNs>(*target_ms * 1e6);
  auto window = config.GetInt("slo.window", static_cast<int64_t>(params->window));
  RMP_RETURN_IF_ERROR(window.status());
  if (*window < 1) {
    return InvalidArgumentError("slo.window must be >= 1");
  }
  params->window = static_cast<size_t>(*window);
  auto budget = config.GetInt("slo.budget_per_1k",
                              static_cast<int64_t>(params->budget_fraction * 1000.0));
  RMP_RETURN_IF_ERROR(budget.status());
  if (*budget < 1 || *budget > 1000) {
    return InvalidArgumentError("slo.budget_per_1k must be in [1, 1000]");
  }
  params->budget_fraction = static_cast<double>(*budget) / 1000.0;
  return OkStatus();
}

SloTracker::SloTracker(MetricsRegistry* registry, const SloParams& params)
    : params_(params), ring_(params.window) {
  if (registry != nullptr) {
    target_gauge_ = registry->GetGauge("slo.target_us");
    p99_gauge_ = registry->GetGauge("slo.window_p99_us");
    violations_gauge_ = registry->GetGauge("slo.violations");
    burn_gauge_ = registry->GetGauge("slo.burn_permille");
    target_gauge_->Set(params_.target / 1000);
  }
}

void SloTracker::Record(DurationNs latency) {
  if (params_.target == 0 || ring_.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[ring_next_] = latency;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  ring_size_ = std::min(ring_size_ + 1, ring_.size());
  if (++since_refresh_ >= params_.refresh_every) {
    RefreshLocked();
  }
}

void SloTracker::Refresh() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefreshLocked();
}

void SloTracker::RefreshLocked() {
  since_refresh_ = 0;
  if (p99_gauge_ == nullptr) {
    return;
  }
  int64_t violations = 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    if (ring_[i] > params_.target) {
      ++violations;
    }
  }
  p99_gauge_->Set(P99Locked() / 1000);
  violations_gauge_->Set(violations);
  if (ring_size_ > 0) {
    const double rate = static_cast<double>(violations) / static_cast<double>(ring_size_);
    burn_gauge_->Set(static_cast<int64_t>(rate / params_.budget_fraction * 1000.0));
  } else {
    burn_gauge_->Set(0);
  }
}

DurationNs SloTracker::P99Locked() const {
  if (ring_size_ == 0) {
    return 0;
  }
  std::vector<DurationNs> sorted(ring_.begin(), ring_.begin() + static_cast<long>(ring_size_));
  const size_t rank = ring_size_ > 1 ? (ring_size_ * 99) / 100 : 0;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(rank), sorted.end());
  return sorted[rank];
}

DurationNs SloTracker::WindowP99() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return P99Locked();
}

double SloTracker::BurnRate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_size_ == 0) {
    return 0.0;
  }
  int64_t violations = 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    if (ring_[i] > params_.target) {
      ++violations;
    }
  }
  const double rate = static_cast<double>(violations) / static_cast<double>(ring_size_);
  return rate / params_.budget_fraction;
}

int64_t SloTracker::violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t violations = 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    if (ring_[i] > params_.target) {
      ++violations;
    }
  }
  return violations;
}

size_t SloTracker::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_size_;
}

}  // namespace rmp
