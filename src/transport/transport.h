// Transport abstraction between the paging client and a memory server.
//
// The paper's client runs "one dedicated paging daemon" that issues blocking
// request/reply exchanges over a TCP socket per server (§3.1). Transport
// captures that call pattern; two implementations exist:
//   - InProcTransport: direct dispatch to a MessageHandler in the same
//     process. Deterministic; used by tests, benches and the simulator.
//   - TcpTransport: a real socket to a ServerRunner, possibly in another
//     process (tools/rmp_server). Exercises the full encode/frame/decode path.

#ifndef SRC_TRANSPORT_TRANSPORT_H_
#define SRC_TRANSPORT_TRANSPORT_H_

#include "src/proto/wire.h"
#include "src/util/status.h"

namespace rmp {

// Server-side message dispatch: a MemoryServer implements this.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;

  // Processes one request and produces the reply. Transport-level failures
  // are not representable here; a handler that cannot satisfy a request
  // returns a reply message with a non-OK status field.
  virtual Message Handle(const Message& request) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Blocking RPC: sends `request`, waits for the matching reply.
  // Returns UnavailableError if the peer is gone (crash / closed socket).
  virtual Result<Message> Call(const Message& request) = 0;

  // Fire-and-forget send (e.g. SHUTDOWN). Best effort.
  virtual Status SendOneWay(const Message& request) = 0;

  virtual bool connected() const = 0;
  virtual void Close() = 0;
};

}  // namespace rmp

#endif  // SRC_TRANSPORT_TRANSPORT_H_
