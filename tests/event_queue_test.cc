#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/resource.h"

namespace rmp {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  queue.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  queue.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), Millis(30));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue queue;
  TimeNs fired_at = -1;
  queue.ScheduleAt(Millis(10), [&] {
    queue.ScheduleAfter(Millis(5), [&] { fired_at = queue.now(); });
  });
  queue.RunUntilEmpty();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(EventQueueTest, EventsCanCascade) {
  EventQueue queue;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) {
      queue.ScheduleAfter(Millis(1), chain);
    }
  };
  queue.ScheduleAt(0, chain);
  queue.RunUntilEmpty();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(queue.now(), Millis(9));
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(Millis(10), [&] { ++fired; });
  queue.ScheduleAt(Millis(30), [&] { ++fired; });
  queue.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), Millis(20));
  EXPECT_EQ(queue.pending(), 1u);
  queue.RunUntilEmpty();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.Step());
  EXPECT_TRUE(queue.empty());
}

TEST(ResourceTest, IdleRequestStartsImmediately) {
  Resource r("dev");
  EXPECT_EQ(r.Serve(Millis(5), Millis(10)), Millis(15));
  EXPECT_EQ(r.busy_until(), Millis(15));
}

TEST(ResourceTest, BusyRequestQueues) {
  Resource r("dev");
  r.Serve(0, Millis(10));
  EXPECT_EQ(r.Serve(Millis(2), Millis(10)), Millis(20));
  EXPECT_EQ(r.requests(), 2);
}

TEST(ResourceTest, IdleGapResetsQueue) {
  Resource r("dev");
  r.Serve(0, Millis(10));
  // Arrives long after the device drained: no queueing delay.
  EXPECT_EQ(r.Serve(Millis(100), Millis(5)), Millis(105));
}

TEST(ResourceTest, BusyTimeAccumulates) {
  Resource r("dev");
  r.Serve(0, Millis(10));
  r.Serve(0, Millis(20));
  EXPECT_EQ(r.busy_time(), Millis(30));
}

TEST(ResourceTest, QueueDelayStatsTracked) {
  Resource r("dev");
  r.Serve(0, Millis(10));
  r.Serve(0, Millis(10));  // Waits 10 ms.
  EXPECT_EQ(r.queue_delay_stats().count(), 2);
  EXPECT_NEAR(r.queue_delay_stats().max(), 10.0, 1e-9);
}

TEST(ResourceTest, ResetClearsState) {
  Resource r("dev");
  r.Serve(0, Millis(10));
  r.Reset();
  EXPECT_EQ(r.busy_until(), 0);
  EXPECT_EQ(r.busy_time(), 0);
  EXPECT_EQ(r.requests(), 0);
}

}  // namespace
}  // namespace rmp
