// Timing models of the interconnection network, as seen by one paging client.
//
// The functional pager moves real bytes through a Transport; these models
// answer only "how long does that take" for the simulated DEC-Alpha cluster.
// Calibration targets come straight from the paper (§3.1, §4.4): an 8 KB page
// costs 9.64 ms on the 10 Mbit/s Ethernet wire plus 1.6 ms of TCP/IP protocol
// processing, 11.24 ms in total.

#ifndef SRC_NET_NETWORK_MODEL_H_
#define SRC_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/units.h"

namespace rmp {

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  // Wire occupancy for a message of `bytes` payload: framing, inter-frame
  // gaps, and contention included; protocol CPU time excluded.
  virtual DurationNs TransferTime(uint64_t bytes) const = 0;

  // Per-transfer protocol processing cost on the client CPU (TCP/IP stack).
  virtual DurationNs ProtocolTime() const = 0;

  // Effective payload bandwidth for page-sized transfers, in Mbit/s.
  virtual double EffectiveBandwidthMbps() const = 0;

  virtual std::string Name() const = 0;
};

// A contention-free link of fixed bandwidth with per-transfer setup latency.
// Used for the ALL_MEMORY bound and as the base for bandwidth-scaling
// extrapolation (ETHERNET*10 in Fig. 4).
class IdealLinkModel final : public NetworkModel {
 public:
  IdealLinkModel(double bandwidth_mbps, DurationNs setup_latency, DurationNs protocol_time)
      : bandwidth_mbps_(bandwidth_mbps),
        setup_latency_(setup_latency),
        protocol_time_(protocol_time) {}

  DurationNs TransferTime(uint64_t bytes) const override {
    return setup_latency_ + WireTime(bytes, bandwidth_mbps_);
  }
  DurationNs ProtocolTime() const override { return protocol_time_; }
  double EffectiveBandwidthMbps() const override;
  std::string Name() const override;

 private:
  double bandwidth_mbps_;
  DurationNs setup_latency_;
  DurationNs protocol_time_;
};

// Wraps another model, dividing wire time by `factor` (protocol time is CPU
// bound and does not scale with the network). This is exactly the paper's
// §4.3 extrapolation: "a network with X times higher bandwidth will decrease
// btime by a factor of X".
class ScaledBandwidthModel final : public NetworkModel {
 public:
  ScaledBandwidthModel(std::shared_ptr<const NetworkModel> base, double factor)
      : base_(std::move(base)), factor_(factor) {}

  DurationNs TransferTime(uint64_t bytes) const override {
    return static_cast<DurationNs>(static_cast<double>(base_->TransferTime(bytes)) / factor_);
  }
  DurationNs ProtocolTime() const override { return base_->ProtocolTime(); }
  double EffectiveBandwidthMbps() const override {
    return base_->EffectiveBandwidthMbps() * factor_;
  }
  std::string Name() const override;

 private:
  std::shared_ptr<const NetworkModel> base_;
  double factor_;
};

}  // namespace rmp

#endif  // SRC_NET_NETWORK_MODEL_H_
