// Compressed cold-tier conformance: CLOCK demotion/promotion, zero-page
// elision, dedup refcount lifecycle under free/overwrite, extent spill
// round-trips, logical-vs-physical accounting, and the read-modify-write
// (parity) paths against cold pages. Everything here runs the tier through
// the same public MemoryServer API the wire protocol uses — the tier must be
// invisible except in the occupancy numbers.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"
#include "src/util/config.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

MemoryServerParams TierParams(uint64_t hot_pages, uint64_t capacity = 4096) {
  MemoryServerParams params;
  params.name = "tier-server";
  params.capacity_pages = capacity;
  params.store_shards = 1;  // One shard keeps demotion order deterministic.
  params.tier.hot_page_limit = hot_pages;
  params.tier.promote_after_hits = 0;  // Most tests want cold to stay cold.
  return params;
}

PageBuffer MakePage(uint64_t seed, unsigned compressible_pct) {
  PageBuffer page;
  FillCompressiblePage(page.span(), seed, compressible_pct, compressible_pct);
  return page;
}

// Allocates `count` slots and stores MakePage(seed0 + i, pct) in each.
std::vector<uint64_t> StorePages(MemoryServer* server, uint64_t count, uint64_t seed0,
                                 unsigned pct) {
  auto first = server->Allocate(count);
  EXPECT_TRUE(first.ok()) << first.status().message();
  std::vector<uint64_t> slots;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t slot = *first + i;
    EXPECT_TRUE(server->Store(slot, MakePage(seed0 + i, pct).span()).ok());
    slots.push_back(slot);
  }
  return slots;
}

TEST(TierTest, TierOffLeavesEverythingHot) {
  MemoryServerParams params;
  params.name = "plain";
  params.capacity_pages = 1024;
  MemoryServer server(params);
  StorePages(&server, 100, 1, 50);
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_EQ(occ.hot_pages, 100u);
  EXPECT_EQ(occ.cold_pages, 0u);
  EXPECT_EQ(occ.zero_pages, 0u);
  EXPECT_EQ(occ.physical_bytes, occ.logical_bytes);
  EXPECT_EQ(server.stats().demotions, 0);
}

TEST(TierTest, DemotionCompressesAndRoundTrips) {
  MemoryServer server(TierParams(8));
  const auto slots = StorePages(&server, 120, 100, 50);
  EXPECT_GT(server.stats().demotions.load(), 0u);
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_LE(occ.hot_pages, 8u);
  EXPECT_GE(occ.cold_pages, 100u);
  // Half-compressible pages must cost well under their logical size.
  EXPECT_LT(occ.physical_bytes, occ.logical_bytes * 3 / 4);
  for (size_t i = 0; i < slots.size(); ++i) {
    auto page = server.Load(slots[i]);
    ASSERT_TRUE(page.ok()) << page.status().message();
    EXPECT_EQ(*page, MakePage(100 + i, 50)) << "slot " << slots[i];
  }
}

TEST(TierTest, HighlyCompressiblePagesDoubleEffectiveCapacity) {
  MemoryServer server(TierParams(1));
  StorePages(&server, 150, 500, 60);
  const TierOccupancy occ = server.tier_occupancy();
  ASSERT_GT(occ.physical_bytes, 0u);
  EXPECT_GT(static_cast<double>(occ.logical_bytes) / static_cast<double>(occ.physical_bytes), 2.0);
}

TEST(TierTest, ZeroPagesAreElided) {
  MemoryServer server(TierParams(8));
  auto first = server.Allocate(50);
  ASSERT_TRUE(first.ok());
  const PageBuffer zeros;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(server.Store(*first + i, zeros.span()).ok());
  }
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_EQ(occ.zero_pages, 50u);
  EXPECT_EQ(occ.hot_pages, 0u);
  EXPECT_EQ(occ.physical_bytes, 0u);
  EXPECT_EQ(occ.logical_bytes, 50u * kPageSize);
  EXPECT_EQ(server.stats().zero_elisions, 50);
  auto page = server.Load(*first + 7);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->IsZero());
  // Overwriting an elided page with data brings it back as a normal page.
  ASSERT_TRUE(server.Store(*first + 7, MakePage(1, 0).span()).ok());
  auto reread = server.Load(*first + 7);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, MakePage(1, 0));
}

TEST(TierTest, DedupSharesIdenticalPages) {
  MemoryServer server(TierParams(1));
  auto first = server.Allocate(20);
  ASSERT_TRUE(first.ok());
  const PageBuffer same = MakePage(42, 30);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(server.Store(*first + i, same.span()).ok());
  }
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_GE(occ.cold_pages, 19u);
  EXPECT_EQ(occ.unique_cold_entries, 1u);  // One payload, many refs.
  EXPECT_GE(server.stats().dedup_hits.load(), 18u);
  for (uint64_t i = 0; i < 20; ++i) {
    auto page = server.Load(*first + i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, same);
  }
}

TEST(TierTest, DedupRefcountSurvivesFreeAndOverwrite) {
  MemoryServer server(TierParams(1));
  auto first = server.Allocate(12);
  ASSERT_TRUE(first.ok());
  const PageBuffer same = MakePage(7, 40);
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(server.Store(*first + i, same.span()).ok());
  }
  // Free half of the sharers: the payload must survive for the rest.
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.Free(*first + i, 1).ok());
  }
  EXPECT_EQ(server.tier_occupancy().unique_cold_entries, 1u);
  auto held = server.Load(*first + 8);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(*held, same);
  // Overwrite the rest with distinct content: the shared entry's refcount
  // walks down and the entry (and its extent bytes) must eventually vanish.
  for (uint64_t i = 6; i < 12; ++i) {
    ASSERT_TRUE(server.Store(*first + i, MakePage(1000 + i, 40).span()).ok());
  }
  // Demote the overwrites too, then check nothing still references `same`.
  StorePages(&server, 4, 2000, 0);
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_LE(occ.unique_cold_entries, occ.cold_pages);
  for (uint64_t i = 6; i < 12; ++i) {
    auto page = server.Load(*first + i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, MakePage(1000 + i, 40));
  }
  // Freeing every slot must drain the cold tier completely.
  const auto slots = server.LiveSlots();
  for (const uint64_t slot : slots) {
    ASSERT_TRUE(server.Free(slot, 1).ok());
  }
  const TierOccupancy drained = server.tier_occupancy();
  EXPECT_EQ(drained.unique_cold_entries, 0u);
  EXPECT_EQ(drained.cold_physical_bytes, 0u);
  EXPECT_EQ(drained.logical_bytes, 0u);
}

TEST(TierTest, ColdPagePromotesAfterRepeatedHits) {
  MemoryServerParams params = TierParams(4);
  params.tier.promote_after_hits = 2;
  MemoryServer server(params);
  const auto slots = StorePages(&server, 40, 300, 50);
  const uint64_t victim = slots.front();
  ASSERT_FALSE(server.tier_occupancy().cold_pages == 0u);
  // Two cold hits cross the promotion threshold.
  for (int i = 0; i < 2; ++i) {
    auto page = server.Load(victim);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, MakePage(300, 50));
  }
  EXPECT_GE(server.stats().promotions.load(), 1u);
  auto after = server.Load(victim);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, MakePage(300, 50));
}

TEST(TierTest, ExtentsSpillToDiskAndComeBack) {
  MemoryServerParams params = TierParams(4);
  params.tier.cold_budget_bytes = 1;  // Clamps to one extent per shard.
  params.tier.spill_blocks = 4096;
  MemoryServer server(params);
  // Incompressible pages fill extents fast (stored raw, 8 KB apiece).
  const auto slots = StorePages(&server, 200, 700, 0);
  EXPECT_GT(server.stats().spills.load(), 0u);
  EXPECT_GT(server.stats().incompressible.load(), 0u);
  EXPECT_GT(server.tier_occupancy().spilled_bytes, 0u);
  for (size_t i = 0; i < slots.size(); ++i) {
    auto page = server.Load(slots[i]);
    ASSERT_TRUE(page.ok()) << page.status().message();
    ASSERT_EQ(*page, MakePage(700 + i, 0)) << "slot " << slots[i];
  }
  EXPECT_GT(server.stats().unspills.load(), 0u);
  // Freeing everything must return the spill blocks too.
  for (const uint64_t slot : slots) {
    ASSERT_TRUE(server.Free(slot, 1).ok());
  }
  EXPECT_EQ(server.tier_occupancy().spilled_bytes, 0u);
}

TEST(TierTest, OvercommitAdmitsBeyondPhysicalCapacity) {
  MemoryServerParams params = TierParams(8, /*capacity=*/64);
  params.tier.logical_overcommit = 2.0;
  MemoryServer server(params);
  EXPECT_EQ(server.capacity_pages(), 128u);
  auto run = server.Allocate(100);
  EXPECT_TRUE(run.ok());
  // Without overcommit the same request is denied.
  MemoryServer plain(TierParams(8, 64));
  EXPECT_FALSE(plain.Allocate(100).ok());
}

TEST(TierTest, DeltaStoreAndXorMergeMaterializeColdPages) {
  MemoryServer server(TierParams(1));
  auto first = server.Allocate(1);
  ASSERT_TRUE(first.ok());
  const PageBuffer old_page = MakePage(11, 50);
  ASSERT_TRUE(server.Store(*first, old_page.span()).ok());
  StorePages(&server, 8, 5000, 50);  // Push the slot cold.
  ASSERT_GT(server.tier_occupancy().cold_pages, 0u);

  // DeltaStore against the cold page must return old XOR new.
  const PageBuffer new_page = MakePage(12, 50);
  auto delta = server.DeltaStore(*first, new_page.span());
  ASSERT_TRUE(delta.ok()) << delta.status().message();
  PageBuffer expected = old_page;
  expected.XorWith(new_page.span());
  EXPECT_EQ(*delta, expected);
  auto stored = server.Load(*first);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, new_page);

  // Demote again, then fold a delta in: parity-server path on a cold slot.
  StorePages(&server, 8, 6000, 50);
  const PageBuffer fold = MakePage(13, 50);
  ASSERT_TRUE(server.XorMerge(*first, fold.span()).ok());
  auto merged = server.Load(*first);
  ASSERT_TRUE(merged.ok());
  PageBuffer want = new_page;
  want.XorWith(fold.span());
  EXPECT_EQ(*merged, want);
}

TEST(TierTest, CrashDropsTheColdTier) {
  MemoryServerParams params = TierParams(4);
  params.tier.cold_budget_bytes = 1;
  params.tier.spill_blocks = 1024;
  MemoryServer server(params);
  StorePages(&server, 100, 900, 0);
  server.Crash();
  EXPECT_EQ(server.live_pages(), 0u);
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_EQ(occ.logical_bytes, 0u);
  EXPECT_EQ(occ.physical_bytes, 0u);
  EXPECT_EQ(occ.spilled_bytes, 0u);
  server.Restart();
  const auto slots = StorePages(&server, 20, 950, 50);
  auto page = server.Load(slots.front());
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(*page, MakePage(950, 50));
}

TEST(TierTest, StatsJsonCarriesTierGauges) {
  MemoryServer server(TierParams(8));
  StorePages(&server, 60, 1100, 50);
  const std::string json = server.StatsJson();
  for (const char* key :
       {"server.logical_bytes", "server.physical_bytes", "server.hot_pages", "server.cold_pages",
        "server.zero_pages", "server.cold_unique", "server.cold_spilled_bytes",
        "server.tier_demotions", "server.dedup_hits", "server.compress_us"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(TierTest, LogicalAndPhysicalBytesDisagreeOnlyWithTier) {
  MemoryServer tiered(TierParams(4));
  StorePages(&tiered, 80, 1300, 70);
  EXPECT_LT(tiered.physical_bytes(), tiered.logical_bytes());
  MemoryServerParams plain_params;
  plain_params.capacity_pages = 1024;
  MemoryServer plain(plain_params);
  StorePages(&plain, 80, 1300, 70);
  EXPECT_EQ(plain.physical_bytes(), plain.logical_bytes());
}

TEST(TierTest, ApplyStoreConfigReadsTierKnobs) {
  auto config = Config::Parse(
      "store.shards = 4\n"
      "store.hot_pages = 256\n"
      "store.compress = false\n"
      "store.dedup = false\n"
      "store.promote_hits = 5\n"
      "store.cold_budget_kb = 1024\n"
      "store.spill_blocks = 2048\n"
      "store.overcommit = 1.5\n");
  ASSERT_TRUE(config.ok());
  MemoryServerParams params;
  ASSERT_TRUE(ApplyStoreConfig(*config, &params).ok());
  EXPECT_EQ(params.store_shards, 4u);
  EXPECT_EQ(params.tier.hot_page_limit, 256u);
  EXPECT_FALSE(params.tier.compress);
  EXPECT_FALSE(params.tier.dedup);
  EXPECT_EQ(params.tier.promote_after_hits, 5u);
  EXPECT_EQ(params.tier.cold_budget_bytes, 1024u * 1024u);
  EXPECT_EQ(params.tier.spill_blocks, 2048u);
  EXPECT_DOUBLE_EQ(params.tier.logical_overcommit, 1.5);
  // Malformed values surface as errors instead of silently defaulting.
  auto bad = Config::Parse("store.hot_pages = lots\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(ApplyStoreConfig(*bad, &params).ok());
}

TEST(TierTest, CompressionDisabledStoresRawButStillTiers) {
  MemoryServerParams params = TierParams(4);
  params.tier.compress = false;
  MemoryServer server(params);
  const auto slots = StorePages(&server, 50, 1500, 80);
  const TierOccupancy occ = server.tier_occupancy();
  EXPECT_GT(occ.cold_pages, 0u);
  EXPECT_EQ(occ.zero_pages, 0u);  // Elision rides the compress knob.
  for (size_t i = 0; i < slots.size(); ++i) {
    auto page = server.Load(slots[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, MakePage(1500 + i, 80));
  }
}

}  // namespace
}  // namespace rmp
