#include "src/proto/cluster_map.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace rmp {
namespace {

constexpr uint32_t kMapMagic = 0x4d504d52;  // "RMPM".
constexpr size_t kMapHeaderBytes = 4 + 8 + 4 + 4;
constexpr size_t kMemberBytes = 4 + 8 + 1;

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
// every map holder must derive the identical ring from the same members.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void StoreU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void StoreU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

ClusterMap ClusterMap::Build(uint64_t epoch, uint32_t groups,
                             std::vector<ClusterMember> members) {
  assert(groups >= 1 && groups <= kMaxPageGroups);
  assert(!members.empty() && members.size() <= kMaxClusterMembers);
  ClusterMap map;
  map.epoch_ = epoch;
  map.groups_ = groups;
  map.members_ = std::move(members);
  map.RebuildRing();
  return map;
}

void ClusterMap::RebuildRing() {
  ring_.clear();
  for (const ClusterMember& member : members_) {
    if (member.state != ClusterMember::State::kActive) {
      continue;
    }
    for (uint32_t v = 0; v < kRingVnodes; ++v) {
      // Point derived from the server id alone (not the incarnation): a
      // rebooted server keeps its ranges, so rejoin does not reshuffle the
      // whole ring.
      const uint64_t point = Mix64((static_cast<uint64_t>(member.server_id) << 32) | v);
      ring_.emplace_back(point, member.server_id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

const ClusterMember* ClusterMap::FindMember(uint32_t server_id) const {
  for (const ClusterMember& member : members_) {
    if (member.server_id == server_id) {
      return &member;
    }
  }
  return nullptr;
}

size_t ClusterMap::active_members() const {
  size_t n = 0;
  for (const ClusterMember& member : members_) {
    n += member.state == ClusterMember::State::kActive ? 1 : 0;
  }
  return n;
}

uint32_t ClusterMap::GroupOf(uint64_t page_id) const {
  assert(groups_ > 0);
  return static_cast<uint32_t>(Mix64(page_id) % groups_);
}

uint32_t ClusterMap::OwnerOf(uint32_t group) const {
  assert(!ring_.empty());
  const uint64_t point = Mix64(0xc1a55e00ull + group);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, uint32_t{0}));
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around the ring.
  }
  return it->second;
}

std::vector<uint32_t> ClusterMap::OwnerChain(uint32_t group, size_t replicas) const {
  std::vector<uint32_t> chain;
  if (ring_.empty()) {
    return chain;
  }
  const uint64_t point = Mix64(0xc1a55e00ull + group);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, uint32_t{0}));
  // Walk at most one full lap collecting distinct owners.
  for (size_t step = 0; step < ring_.size() && chain.size() < replicas; ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const uint32_t id = it->second;
    if (std::find(chain.begin(), chain.end(), id) == chain.end()) {
      chain.push_back(id);
    }
    ++it;
  }
  return chain;
}

std::vector<uint8_t> ClusterMap::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kMapHeaderBytes + members_.size() * kMemberBytes);
  StoreU32(&out, kMapMagic);
  StoreU64(&out, epoch_);
  StoreU32(&out, groups_);
  StoreU32(&out, static_cast<uint32_t>(members_.size()));
  for (const ClusterMember& member : members_) {
    StoreU32(&out, member.server_id);
    StoreU64(&out, member.incarnation);
    out.push_back(static_cast<uint8_t>(member.state));
  }
  return out;
}

Result<ClusterMap> ClusterMap::Deserialize(std::span<const uint8_t> bytes) {
  if (bytes.size() < kMapHeaderBytes) {
    return ProtocolError("cluster map shorter than header");
  }
  const uint8_t* p = bytes.data();
  if (GetU32(p) != kMapMagic) {
    return ProtocolError("cluster map bad magic");
  }
  const uint64_t epoch = GetU64(p + 4);
  if (epoch == 0) {
    return ProtocolError("cluster map epoch 0 is reserved");
  }
  const uint32_t groups = GetU32(p + 12);
  if (groups < 1 || groups > kMaxPageGroups) {
    return ProtocolError("cluster map group count " + std::to_string(groups) +
                         " out of range");
  }
  const uint32_t member_count = GetU32(p + 16);
  if (member_count < 1 || member_count > kMaxClusterMembers) {
    // Bound before sizing anything: a flipped bit must not demand 4 G
    // member entries.
    return ProtocolError("cluster map member count " + std::to_string(member_count) +
                         " out of range");
  }
  if (bytes.size() != kMapHeaderBytes + static_cast<size_t>(member_count) * kMemberBytes) {
    return ProtocolError("cluster map length mismatch");
  }
  std::vector<ClusterMember> members;
  members.reserve(member_count);
  size_t active = 0;
  for (uint32_t i = 0; i < member_count; ++i) {
    const uint8_t* m = p + kMapHeaderBytes + i * kMemberBytes;
    ClusterMember member;
    member.server_id = GetU32(m);
    member.incarnation = GetU64(m + 4);
    const uint8_t raw_state = m[12];
    if (raw_state > static_cast<uint8_t>(ClusterMember::State::kLeaving)) {
      return ProtocolError("cluster map member state " + std::to_string(raw_state) +
                           " unknown");
    }
    member.state = static_cast<ClusterMember::State>(raw_state);
    active += member.state == ClusterMember::State::kActive ? 1 : 0;
    for (const ClusterMember& seen : members) {
      if (seen.server_id == member.server_id) {
        return ProtocolError("cluster map duplicates server " +
                             std::to_string(member.server_id));
      }
    }
    members.push_back(member);
  }
  if (active == 0) {
    // A map with no ACTIVE member has no ring: nothing could own anything.
    return ProtocolError("cluster map has no active member");
  }
  return ClusterMap::Build(epoch, groups, std::move(members));
}

}  // namespace rmp
