// The user-level remote memory server (paper §3.2).
//
// "The server is a user level program listening to a socket... When the
// client requests a pagein, the server transfers the requested page(s)...
// When the client requests a pageout, the server reads the incoming pages
// and stores them in its main memory. The server is also responsible for
// swap space allocation and for providing periodically information to the
// client concerning the memory load of its host."
//
// A parity server is *the same program*: "it just performs pageins and
// pageouts... without knowing whether it stores memory pages or parity
// pages" — so there is deliberately no parity-specific code here.
//
// Storage layout: the page store is lock-striped into N shards keyed by a
// multiplicative slot hash, so concurrent sessions (and the TcpServer worker
// pool) contend only when they touch the same shard. Each shard stores pages
// in slab-allocated frames (kSlabPages per slab) recycled through a free
// list, instead of one heap PageBuffer per page. Allocation bookkeeping
// (slot runs, capacity, native load) lives under a separate control mutex;
// lock order is control → shard. DESIGN.md §9 discusses the choices.
//
// Fault and load injection used by the experiments:
//   Crash()          — drops every stored page (workstation crash, §2.2).
//   SetNativeLoad()  — native processes claim memory; the server shrinks its
//                      donated pool and starts advising the client to stop
//                      sending pages (§2.1).

#ifndef SRC_SERVER_MEMORY_SERVER_H_
#define SRC_SERVER_MEMORY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/transport/transport.h"
#include "src/util/bytes.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/tracing.h"

namespace rmp {

struct MemoryServerParams {
  std::string name = "server";
  uint64_t capacity_pages = 4096;  // Donated main memory (32 MB by default).
  // When the live page count exceeds this fraction of the (current)
  // capacity, acks start carrying ADVISE_STOP.
  double advise_stop_fraction = 0.95;
  // Lock stripes in the page store. 1 reproduces the old single-mutex server
  // (the bench baseline); values are rounded up to a power of two.
  uint32_t store_shards = 16;
  // Modeled per-page service time (µs) spent while holding the slot's shard
  // lock; 0 disables it. Benches use this to expose lock-granularity
  // serialization on hosts with fewer cores than worker threads: a sleeping
  // thread yields the CPU, so striped shards overlap service the way
  // multi-core memcpys would, while a single mutex serializes it.
  int64_t store_service_micros = 0;
};

// The server's counters, backed by its MetricsRegistry (DESIGN.md §12): each
// member is a registry Counter, so the same numbers the direct accessors see
// ship in a STATS reply. Counters stay atomic, so shard-parallel request
// threads bump them without sharing a lock; read them with the implicit load.
struct MemoryServerStats {
  explicit MemoryServerStats(MetricsRegistry* registry)
      : pageouts_served(*registry->GetCounter("server.pageouts_served")),
        pageins_served(*registry->GetCounter("server.pageins_served")),
        batch_requests(*registry->GetCounter("server.batch_requests")),
        allocations(*registry->GetCounter("server.allocations")),
        denials(*registry->GetCounter("server.denials")),
        heartbeats_served(*registry->GetCounter("server.heartbeats_served")),
        migrations_served(*registry->GetCounter("server.migrations_served")),
        bytes_stored(*registry->GetCounter("server.bytes_stored")),
        bytes_returned(*registry->GetCounter("server.bytes_returned")) {}

  Counter& pageouts_served;
  Counter& pageins_served;
  Counter& batch_requests;  // PAGEOUT_BATCH / PAGEIN_BATCH messages.
  Counter& allocations;
  Counter& denials;
  Counter& heartbeats_served;
  Counter& migrations_served;  // MIGRATE (read-and-free) ops.
  Counter& bytes_stored;
  Counter& bytes_returned;
};

class MemoryServer : public MessageHandler {
 public:
  explicit MemoryServer(const MemoryServerParams& params = MemoryServerParams());

  // MessageHandler: dispatches the wire protocol. Thread-safe.
  Message Handle(const Message& request) override;

  // Direct API (same semantics as the wire protocol; used by tests and by
  // the recovery manager, which reads surviving servers' pages).
  Result<uint64_t> Allocate(uint64_t pages);  // First slot of a fresh run.
  Status Free(uint64_t first_slot, uint64_t pages);
  Status Store(uint64_t slot, std::span<const uint8_t> page);
  Result<PageBuffer> Load(uint64_t slot) const;

  // Vectored forms. StoreBatch writes slots.size() pages (`pages` is their
  // concatenation), stopping at the first failure; *stored_out is the count
  // stored, which on error is also the failing index. LoadBatch appends
  // kPageSize bytes per slot to *out in request order, stopping at the first
  // failure (pages already appended stay in *out).
  Status StoreBatch(std::span<const uint64_t> slots, std::span<const uint8_t> pages,
                    uint64_t* stored_out);
  Status LoadBatch(std::span<const uint64_t> slots, std::vector<uint8_t>* out) const;

  // MIGRATE: returns the page at `slot` and frees the slot in one operation
  // (the read half of the §2.1 drain path, one round trip on the wire).
  Result<PageBuffer> MigrateOut(uint64_t slot);

  // Basic-parity primitives (§2.2 "Parity"): the data server computes
  // old XOR new while storing, the parity server folds a delta into the
  // stored page. An absent slot reads as all-zeroes for both.
  Result<PageBuffer> DeltaStore(uint64_t slot, std::span<const uint8_t> page);
  Status XorMerge(uint64_t slot, std::span<const uint8_t> delta);

  bool Holds(uint64_t slot) const;

  // All live slots, sorted (recovery enumerates a crashed server's peers).
  std::vector<uint64_t> LiveSlots() const;

  // Fault / load injection.
  void Crash();
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  void Restart();  // Clears the crashed flag; storage stays empty.
  // Bumped on every Restart(). Heartbeat acks carry it so a client can tell
  // a rebooted-empty server (incarnation changed: its pages are gone, trigger
  // a rebuild) from a healed network partition (incarnation unchanged: the
  // pages survived, re-admission is enough). See DESIGN.md §11.
  uint64_t incarnation() const { return incarnation_.load(std::memory_order_acquire); }
  // Zeroes every counter in stats(). A restarted workstation starts from a
  // clean slate, so post-recovery assertions (pageouts_served, denials, ...)
  // must not see the pre-crash totals; Testbed::RestartServer calls this.
  void ResetStats();
  // `fraction` of the donated memory reclaimed by native processes on the
  // server workstation. Raising it can push the server into ADVISE_STOP.
  void SetNativeLoad(double fraction);

  // Test hook: requests touching `slot` sleep for `micros` before being
  // served (outside any server lock, so other slots proceed). Lets tests
  // force out-of-order replies from a multi-worker TcpServer session.
  void SetSlotDelayForTest(uint64_t slot, int64_t micros);

  uint64_t capacity_pages() const;
  uint64_t free_pages() const;
  uint64_t live_pages() const;
  bool ShouldAdviseStop() const;

  uint32_t shard_count() const { return shard_count_; }
  const MemoryServerStats& stats() const { return stats_; }
  const std::string& name() const { return params_.name; }

  // --- Live introspection (DESIGN.md §12) ---------------------------------
  // The registry behind stats(), plus occupancy gauges refreshed on demand.
  MetricsRegistry& metrics() const { return registry_; }
  // Refreshes the occupancy gauges and exports the registry as JSON — the
  // STATS reply payload.
  std::string StatsJson() const;
  // Optional tracer whose ring answers TRACE_DUMP (a server-side process
  // would trace its own ops; the testbed attaches the client's tracer so the
  // dump travels the wire). Not owned; pass nullptr to detach.
  void AttachTracer(PageTracer* tracer) { tracer_ = tracer; }

 private:
  // Frames per slab: 64 × 8 KB = 512 KB slabs, large enough to amortize the
  // allocation, small enough that a lightly used shard stays cheap.
  static constexpr uint32_t kSlabPages = 64;

  struct Shard {
    mutable std::mutex mutex;
    // slot → frame index (slab = frame / kSlabPages, offset = frame % it).
    std::unordered_map<uint64_t, uint32_t> frames;
    std::vector<std::unique_ptr<uint8_t[]>> slabs;
    std::vector<uint32_t> free_frames;
  };

  Shard& ShardFor(uint64_t slot) const;
  static uint8_t* FramePtr(const Shard& shard, uint32_t frame);
  // Pops a free frame, growing the slab list if needed. Shard mutex held.
  static uint32_t TakeFrameLocked(Shard* shard);

  uint64_t EffectiveCapacityLocked() const;
  uint64_t FreePagesLocked() const;
  bool AdviseStopLocked() const;

  MemoryServerParams params_;
  uint32_t shard_count_ = 1;
  uint32_t shard_bits_ = 0;
  std::unique_ptr<Shard[]> shards_;

  // Allocation bookkeeping; taken before any shard mutex, never after.
  mutable std::mutex control_mutex_;
  uint64_t reserved_slots_ = 0;  // Allocated (granted) but possibly unwritten.
  std::vector<std::pair<uint64_t, uint64_t>> free_runs_;
  double native_load_ = 0.0;
  std::unordered_map<uint64_t, int64_t> slot_delays_micros_;

  // Read lock-free on the data path; written under control_mutex_.
  std::atomic<uint64_t> next_slot_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> has_slot_delays_{false};
  std::atomic<uint64_t> incarnation_{1};

  // Declared before stats_: the stat counters live in this registry.
  mutable MetricsRegistry registry_;
  mutable MemoryServerStats stats_{&registry_};
  PageTracer* tracer_ = nullptr;
};

}  // namespace rmp

#endif  // SRC_SERVER_MEMORY_SERVER_H_
