// Trace tooling demo: record an application's page-reference stream once,
// save it to disk, then replay the identical stream against every paging
// policy for an apples-to-apples comparison — the workflow a user of this
// library would follow with traces of their own application.
//
//   $ ./trace_replay [trace-file]

#include <cstdio>
#include <string>

#include "src/core/testbed.h"
#include "src/net/ethernet_model.h"
#include "src/vm/trace.h"
#include "src/workloads/workload.h"

namespace rmp {
namespace {

int Main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/rmp_fft.trace";
  const auto fft = MakeFft(20.0);
  const uint64_t virtual_pages = PagesForBytes(fft->info().data_bytes) + 16;
  constexpr uint32_t kFrames = 2304;

  // 1. Record the reference stream (against a throwaway backend).
  std::printf("recording FFT/20MB reference stream...\n");
  AccessTrace trace;
  {
    TestbedParams params;
    params.policy = Policy::kNoReliability;
    params.data_servers = 2;
    params.server_capacity_pages = virtual_pages;
    auto bed = Testbed::Create(params);
    if (!bed.ok()) {
      std::fprintf(stderr, "%s\n", bed.status().ToString().c_str());
      return 1;
    }
    VmParams vm_params;
    vm_params.virtual_pages = virtual_pages;
    vm_params.physical_frames = kFrames;
    PagedVm vm(vm_params, &(*bed)->backend());
    trace.AttachTo(&vm);
    TimeNs now = 0;
    if (!fft->Run(&vm, &now).ok()) {
      std::fprintf(stderr, "workload failed\n");
      return 1;
    }
  }
  if (!trace.Save(path).ok()) {
    std::fprintf(stderr, "cannot save trace\n");
    return 1;
  }
  std::printf("  %zu references (%lld writes) -> %s (%zu KB)\n\n", trace.size(),
              (long long)trace.CountWrites(), path.c_str(), trace.size() * 8 / 1024);

  // 2. Load it back and replay under each policy.
  auto loaded = AccessTrace::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load trace: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  struct Setup {
    Policy policy;
    int data_servers;
  };
  const Setup setups[] = {
      {Policy::kNoReliability, 2}, {Policy::kParityLogging, 4},
      {Policy::kMirroring, 2},     {Policy::kWriteThrough, 2},
      {Policy::kDisk, 0},
  };
  std::printf("%-16s %10s %10s %10s\n", "policy", "etime s", "pageins", "pageouts");
  for (const Setup& setup : setups) {
    TestbedParams params;
    params.policy = setup.policy;
    params.data_servers = setup.data_servers;
    params.server_capacity_pages = virtual_pages * 2;
    params.network = std::make_shared<EthernetModel>();
    params.disk_blocks = virtual_pages + 1024;
    auto bed = Testbed::Create(params);
    if (!bed.ok()) {
      continue;
    }
    VmParams vm_params;
    vm_params.virtual_pages = virtual_pages;
    vm_params.physical_frames = kFrames;
    PagedVm vm(vm_params, &(*bed)->backend());
    TimeNs now = Seconds(fft->info().init_seconds);
    const Status replayed =
        loaded->Replay(&vm, &now, fft->info().user_seconds + fft->info().system_seconds);
    if (!replayed.ok()) {
      std::printf("%-16s FAILED: %s\n", std::string(PolicyName(setup.policy)).c_str(),
                  replayed.ToString().c_str());
      continue;
    }
    std::printf("%-16s %10.2f %10lld %10lld\n", std::string(PolicyName(setup.policy)).c_str(),
                ToSeconds(now), (long long)vm.stats().pageins, (long long)vm.stats().pageouts);
  }
  std::printf("\n(identical reference stream across all rows: the fault counts match,\n"
              " only the device costs differ)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
