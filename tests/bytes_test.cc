#include "src/util/bytes.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/rng.h"

namespace rmp {
namespace {

TEST(PageBufferTest, ZeroInitialized) {
  PageBuffer page;
  EXPECT_EQ(page.size(), kPageSize);
  EXPECT_TRUE(page.IsZero());
}

TEST(PageBufferTest, AssignCopiesAndZeroPads) {
  std::vector<uint8_t> bytes = {1, 2, 3};
  PageBuffer page;
  FillPattern(page.span(), 99);  // Dirty it first.
  page.Assign(std::span<const uint8_t>(bytes));
  EXPECT_EQ(page[0], 1);
  EXPECT_EQ(page[1], 2);
  EXPECT_EQ(page[2], 3);
  EXPECT_EQ(page[3], 0);
  EXPECT_EQ(page[kPageSize - 1], 0);
}

TEST(PageBufferTest, ConstructFromSpan) {
  PageBuffer source;
  FillPattern(source.span(), 7);
  PageBuffer copy(source.span());
  EXPECT_EQ(copy, source);
}

TEST(PageBufferTest, XorWithSelfIsZero) {
  PageBuffer page;
  FillPattern(page.span(), 1234);
  PageBuffer copy(page.span());
  page.XorWith(copy.span());
  EXPECT_TRUE(page.IsZero());
}

TEST(PageBufferTest, XorRoundTrips) {
  PageBuffer a;
  PageBuffer b;
  FillPattern(a.span(), 1);
  FillPattern(b.span(), 2);
  PageBuffer original_a(a.span());
  a.XorWith(b.span());
  EXPECT_NE(a, original_a);
  a.XorWith(b.span());
  EXPECT_EQ(a, original_a);
}

// The parity-group identity: XOR of any set of pages recovers a missing
// member when combined with the rest.
TEST(PageBufferTest, ParityReconstructsAnyMember) {
  constexpr int kPages = 5;
  std::vector<PageBuffer> pages(kPages);
  PageBuffer parity;
  for (int i = 0; i < kPages; ++i) {
    FillPattern(pages[i].span(), 100 + i);
    parity.XorWith(pages[i].span());
  }
  for (int lost = 0; lost < kPages; ++lost) {
    PageBuffer reconstructed(parity.span());
    for (int i = 0; i < kPages; ++i) {
      if (i != lost) {
        reconstructed.XorWith(pages[i].span());
      }
    }
    EXPECT_EQ(reconstructed, pages[lost]) << "lost member " << lost;
  }
}

TEST(XorBytesTest, HandlesUnalignedTails) {
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 100u}) {
    std::vector<uint8_t> dst(n);
    std::vector<uint8_t> src(n);
    Rng rng(n);
    for (size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<uint8_t>(rng.Next());
      src[i] = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = dst[i] ^ src[i];
    }
    XorBytes(dst.data(), src.data(), n);
    EXPECT_EQ(dst, expected) << "n=" << n;
  }
}

// Randomized differential check of the dispatched (possibly SIMD) XorBytes
// against the scalar reference, across sizes spanning the vector widths,
// misaligned bases, and overlap-free offsets into one backing allocation.
TEST(XorBytesTest, DispatchMatchesScalarAcrossSizesAndAlignments) {
  Rng rng(2024);
  const size_t sizes[] = {0,  1,  15,  16,  17,  31,  32,  33,  63,       64,
                          65, 96, 127, 128, 255, 257, 1000, 4096, kPageSize};
  for (const size_t n : sizes) {
    for (const size_t dst_align : {0u, 1u, 3u, 8u, 17u}) {
      for (const size_t src_align : {0u, 2u, 9u}) {
        std::vector<uint8_t> backing(2 * (n + 32) + 64);
        for (auto& b : backing) {
          b = static_cast<uint8_t>(rng.Next());
        }
        // Carve two overlap-free regions out of one allocation so relative
        // offsets (not just absolute alignment) vary too.
        uint8_t* dst = backing.data() + dst_align;
        uint8_t* src = backing.data() + (n + 32) + src_align;
        std::vector<uint8_t> expected_dst(dst, dst + n);
        XorBytesScalar(expected_dst.data(), src, n);
        XorBytes(dst, src, n);
        EXPECT_TRUE(std::equal(dst, dst + n, expected_dst.begin()))
            << "n=" << n << " dst_align=" << dst_align << " src_align=" << src_align
            << " impl=" << XorBytesImplName();
      }
    }
  }
}

TEST(XorBytesTest, DispatchNameIsKnown) {
  const std::string_view name = XorBytesImplName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "scalar") << name;
}

TEST(IsZeroBytesTest, DetectsSingleNonzeroByteAnywhere) {
  for (const size_t n : {1u, 7u, 8u, 63u, 64u, 65u, 200u}) {
    std::vector<uint8_t> buf(n, 0);
    EXPECT_TRUE(IsZeroBytes(buf.data(), n)) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      buf[i] = 0x80;
      EXPECT_FALSE(IsZeroBytes(buf.data(), n)) << "n=" << n << " i=" << i;
      buf[i] = 0;
    }
  }
  EXPECT_TRUE(IsZeroBytes(nullptr, 0));
}

TEST(IsZeroBytesTest, AgreesWithPageBufferIsZero) {
  PageBuffer page;
  EXPECT_TRUE(page.IsZero());
  page[kPageSize - 1] = 1;
  EXPECT_FALSE(page.IsZero());
  EXPECT_FALSE(IsZeroBytes(page.data(), page.size()));
}

TEST(PatternTest, FillAndCheckAgree) {
  PageBuffer page;
  FillPattern(page.span(), 42);
  EXPECT_TRUE(CheckPattern(page.span(), 42));
  EXPECT_FALSE(CheckPattern(page.span(), 43));
}

TEST(PatternTest, SingleBitFlipDetected) {
  PageBuffer page;
  FillPattern(page.span(), 42);
  page[kPageSize / 2] ^= 0x01;
  EXPECT_FALSE(CheckPattern(page.span(), 42));
}

TEST(PatternTest, DistinctSeedsProduceDistinctPages) {
  PageBuffer a;
  PageBuffer b;
  FillPattern(a.span(), 1);
  FillPattern(b.span(), 2);
  EXPECT_NE(a, b);
}

TEST(PageBufferTest, ClearZeroes) {
  PageBuffer page;
  FillPattern(page.span(), 9);
  page.Clear();
  EXPECT_TRUE(page.IsZero());
}

}  // namespace
}  // namespace rmp
