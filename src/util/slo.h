// Sliding-window SLO tracking (DESIGN.md §17).
//
// The bench gate (scripts/diff_bench.py) compares medians of named metrics;
// what it could not see before this module is *burn rate* — how fast a run
// is spending its latency-violation budget. SloTracker keeps the last
// `window` completed-operation latencies in a ring, computes the window p99
// by selection, and publishes the result as `slo.*` gauges in a
// MetricsRegistry, so a live rmptop poll and a bench JSON line read the same
// numbers:
//
//   slo.target_us       — the configured p99 target.
//   slo.window_p99_us   — p99 over the current window.
//   slo.violations      — window samples over target.
//   slo.burn_permille   — (violations / window) / budget, in permille of the
//                         allowed rate: 1000 = burning exactly the budget,
//                         >1000 = the SLO is being violated faster than the
//                         error budget admits.
//
// Record() is cheap (one mutex, one ring write); the gauges refresh on a
// small period counter rather than every sample, so a million-op soak does
// not pay a p99 selection per operation.

#ifndef SRC_UTIL_SLO_H_
#define SRC_UTIL_SLO_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/util/config.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace rmp {

struct SloParams {
  // p99 latency target; 0 disables the tracker (Record early-outs).
  DurationNs target = Millis(50);
  // Completed operations the sliding window holds.
  size_t window = 512;
  // Fraction of window samples allowed over target before the budget is
  // burning at 1.0x (1000 permille).
  double budget_fraction = 0.01;
  // Gauges refresh every this many samples (and on Refresh()).
  size_t refresh_every = 64;
};

// Applies the `slo.*` Config keys over `params`:
//   slo.target_ms  -> target           (0 = tracker disabled)
//   slo.window     -> window
//   slo.budget_per_1k -> budget_fraction (permille of samples allowed over)
Status ApplySloConfig(const Config& config, SloParams* params);

class SloTracker {
 public:
  // `registry` may be null (window math only, no gauges).
  explicit SloTracker(MetricsRegistry* registry = nullptr, const SloParams& params = SloParams());
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Records one completed operation's total latency.
  void Record(DurationNs latency);

  // Recomputes and publishes the gauges now (Record does it periodically).
  void Refresh();

  // p99 over the current window (0 when empty).
  DurationNs WindowP99() const;
  // Violation-rate / budget ratio: 1.0 = burning exactly the allowed error
  // budget, > 1.0 = violating the SLO. 0 when the window is empty.
  double BurnRate() const;
  int64_t violations() const;
  size_t samples() const;

  const SloParams& params() const { return params_; }

 private:
  DurationNs P99Locked() const;
  void RefreshLocked();

  SloParams params_;
  Gauge* target_gauge_ = nullptr;
  Gauge* p99_gauge_ = nullptr;
  Gauge* violations_gauge_ = nullptr;
  Gauge* burn_gauge_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<DurationNs> ring_;
  size_t ring_next_ = 0;
  size_t ring_size_ = 0;
  size_t since_refresh_ = 0;
};

}  // namespace rmp

#endif  // SRC_UTIL_SLO_H_
