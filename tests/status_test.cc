#include "src/util/status.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NoSpaceError("server full");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(status.message(), "server full");
  EXPECT_EQ(status.ToString(), "NO_SPACE: server full");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(NoSpaceError("x").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(UnavailableError("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ProtocolError("x").code(), ErrorCode::kProtocol);
  EXPECT_EQ(CorruptionError("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(FailedPreconditionError("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNoSpace), "NO_SPACE");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kCorruption), "CORRUPTION");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status::Ok());
  EXPECT_EQ(NoSpaceError("a"), NoSpaceError("a"));
  EXPECT_FALSE(NoSpaceError("a") == NoSpaceError("b"));
  EXPECT_FALSE(NoSpaceError("a") == UnavailableError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

Status FailsWhen(bool fail) {
  if (fail) {
    return InternalError("boom");
  }
  return OkStatus();
}

Status Propagates(bool fail) {
  RMP_RETURN_IF_ERROR(FailsWhen(fail));
  return OkStatus();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), ErrorCode::kInternal);
}

Result<int> MaybeValue(bool fail) {
  if (fail) {
    return UnavailableError("gone");
  }
  return 9;
}

Result<int> AssignsOrReturns(bool fail) {
  RMP_ASSIGN_OR_RETURN(const int v, MaybeValue(fail));
  return v + 1;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  auto ok = AssignsOrReturns(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  auto err = AssignsOrReturns(true);
  EXPECT_EQ(err.status().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace rmp
