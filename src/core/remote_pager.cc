#include "src/core/remote_pager.h"

#include <algorithm>
#include <map>

namespace rmp {

TimeNs RemotePagerBase::ChargeTransferCost(TimeNs now, const NetworkFabric::TransferCost& cost) {
  stats_.protocol_time += cost.protocol;
  stats_.wire_time += cost.wire;
  // Stage decomposition: protocol processing (service), then waiting behind
  // earlier transfers (queue), then this transfer's own wire occupancy.
  tracer_.Span(TraceStage::kService, now, now + cost.protocol);
  const TimeNs enqueue = now + cost.protocol;
  tracer_.Span(TraceStage::kQueue, enqueue, enqueue + cost.queued);
  tracer_.Span(TraceStage::kWire, enqueue + cost.queued, enqueue + cost.wire);
  return cost.completion;
}

TimeNs RemotePagerBase::ChargePageTransfer(TimeNs now, size_t peer) {
  ++stats_.page_transfers;
  return ChargeTransferCost(now, fabric_->Transfer(now, kPageWireBytes, peer));
}

TimeNs RemotePagerBase::ChargePageTransferAsync(TimeNs now, size_t peer) {
  ++stats_.page_transfers;
  return ChargeTransferCost(now, fabric_->TransferAsync(now, kPageWireBytes, peer));
}

TimeNs RemotePagerBase::ChargePageBatchTransfer(TimeNs now, uint64_t pages, size_t peer) {
  stats_.page_transfers += static_cast<int64_t>(pages);
  return ChargeTransferCost(now, fabric_->Transfer(now, BatchWireBytes(pages), peer));
}

TimeNs RemotePagerBase::ChargePageBatchTransferAsync(TimeNs now, uint64_t pages, size_t peer) {
  stats_.page_transfers += static_cast<int64_t>(pages);
  return ChargeTransferCost(now, fabric_->TransferAsync(now, BatchWireBytes(pages), peer));
}

TimeNs RemotePagerBase::ChargeControl(TimeNs now, size_t peer) {
  return ChargeTransferCost(now, fabric_->Transfer(now, kControlWireBytes, peer));
}

void RemotePagerBase::SyncStatsToMetrics() {
  metrics_.GetCounter("backend.pageouts")->store(stats_.pageouts);
  metrics_.GetCounter("backend.pageins")->store(stats_.pageins);
  metrics_.GetCounter("backend.page_transfers")->store(stats_.page_transfers);
  metrics_.GetCounter("backend.disk_transfers")->store(stats_.disk_transfers);
  metrics_.GetCounter("backend.protocol_time_ns")->store(stats_.protocol_time);
  metrics_.GetCounter("backend.wire_time_ns")->store(stats_.wire_time);
  metrics_.GetCounter("backend.disk_time_ns")->store(stats_.disk_time);
  metrics_.GetCounter("backend.paging_time_ns")->store(stats_.paging_time);
  metrics_.GetCounter("backend.retries")->store(stats_.retries);
  metrics_.GetCounter("backend.failovers")->store(stats_.failovers);
  metrics_.GetCounter("backend.degraded_reads")->store(stats_.degraded_reads);
  metrics_.GetCounter("backend.reconstructions")->store(stats_.reconstructions);
  metrics_.GetCounter("backend.backoff_time_ns")->store(stats_.backoff_time);
  metrics_.GetCounter("backend.stale_epoch_retries")->store(stats_.stale_epoch_retries);
}

Result<uint64_t> RemotePagerBase::TakeSlotOn(size_t i, TimeNs* now) {
  ServerPeer& peer = cluster_.peer(i);
  auto slot = peer.TakeSlot();
  if (slot.ok()) {
    return slot;
  }
  if (peer.no_new_extents()) {
    return NoSpaceError(peer.name() + " advised stop; pool exhausted");
  }
  for (int attempt = 1;; ++attempt) {
    Status granted = peer.AllocExtent(params_.alloc_extent_pages);
    if (granted.code() == ErrorCode::kNoSpace && params_.alloc_extent_pages > 1) {
      // A long-lived server's free space fragments into scattered single
      // slots (reclaimed parity-group members); fall back to single-slot
      // grants before giving up on the server.
      granted = peer.AllocExtent(1);
    }
    if (granted.code() == ErrorCode::kStaleEpoch && attempt < params_.retry.max_attempts) {
      NoteStaleEpoch(attempt, now);
      continue;
    }
    RMP_RETURN_IF_ERROR(granted);
    break;
  }
  *now = ChargeControl(*now);
  return peer.TakeSlot();
}

bool RemotePagerBase::IsRetryableError(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kIoError:
    case ErrorCode::kCorruption:
      return true;
    default:
      return false;
  }
}

bool RemotePagerBase::ShouldRetry(size_t peer_index, const Status& status) {
  return IsRetryableError(status) && cluster_.peer(peer_index).transport().connected();
}

void RemotePagerBase::ChargeBackoff(int attempt, TimeNs* now) {
  const RetryParams& retry = params_.retry;
  DurationNs delay = retry.backoff_base;
  for (int i = 1; i < attempt && delay < retry.backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, retry.backoff_max);
  if (retry.jitter > 0.0) {
    const double scale = 1.0 + retry.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
    delay = static_cast<DurationNs>(static_cast<double>(delay) * scale);
  }
  tracer_.Span(TraceStage::kBackoff, *now, *now + delay);
  *now += delay;
  stats_.backoff_time += delay;
  ++stats_.retries;
}

Status RemotePagerBase::ReliablePageIn(size_t peer_index, uint64_t slot, std::span<uint8_t> out,
                                       TimeNs* now) {
  ServerPeer& peer = cluster_.peer(peer_index);
  Status status = OkStatus();
  for (int attempt = 1;; ++attempt) {
    status = peer.PageInFrom(slot, out);
    if (status.code() == ErrorCode::kStaleEpoch && attempt < params_.retry.max_attempts) {
      // The server holds a newer map than we stamped. Refresh and retry the
      // same slot: during a handoff the old owner keeps serving reads until
      // the new owner acked the last page, so the read stays answerable.
      NoteStaleEpoch(attempt, now);
      continue;
    }
    if (status.ok() || attempt >= params_.retry.max_attempts ||
        !ShouldRetry(peer_index, status)) {
      return status;
    }
    // The RPC helper marked the peer dead, but its connection is up: only a
    // message was lost. Restore liveness and try again after backing off.
    peer.mark_alive();
    ChargeBackoff(attempt, now);
  }
}

Result<bool> RemotePagerBase::ReliablePageOut(size_t peer_index, uint64_t slot,
                                              std::span<const uint8_t> data, TimeNs* now) {
  ServerPeer& peer = cluster_.peer(peer_index);
  for (int attempt = 1;; ++attempt) {
    auto advise = peer.PageOutTo(slot, data);
    if (advise.status().code() == ErrorCode::kStaleEpoch &&
        attempt < params_.retry.max_attempts) {
      NoteStaleEpoch(attempt, now);
      continue;
    }
    if (advise.ok() || attempt >= params_.retry.max_attempts ||
        !ShouldRetry(peer_index, advise.status())) {
      return advise;
    }
    peer.mark_alive();
    ChargeBackoff(attempt, now);
  }
}

Status RemotePagerBase::ReliableFree(size_t peer_index, uint64_t first_slot, uint64_t count,
                                     TimeNs* now) {
  ServerPeer& peer = cluster_.peer(peer_index);
  Status status = OkStatus();
  for (int attempt = 1;; ++attempt) {
    status = peer.FreeOn(first_slot, count);
    if (status.code() == ErrorCode::kStaleEpoch && attempt < params_.retry.max_attempts) {
      NoteStaleEpoch(attempt, now);
      continue;
    }
    if (status.ok() || attempt >= params_.retry.max_attempts ||
        !ShouldRetry(peer_index, status)) {
      return status;
    }
    peer.mark_alive();
    ChargeBackoff(attempt, now);
  }
}

Status RemotePagerBase::BatchFetch(std::span<const PageWant> wants, std::vector<PageBuffer>* out,
                                   TimeNs* now) {
  out->assign(wants.size(), PageBuffer());
  if (wants.empty()) {
    return OkStatus();
  }
  // Group want indices by peer (ordered, for determinism), then chunk each
  // peer's run at the wire limit.
  std::map<size_t, std::vector<size_t>> by_peer;
  for (size_t i = 0; i < wants.size(); ++i) {
    by_peer[wants[i].peer].push_back(i);
  }
  struct Chunk {
    size_t peer = 0;
    std::vector<size_t> indices;
    std::vector<uint64_t> slots;
    RpcFuture future;
  };
  std::vector<Chunk> chunks;
  for (auto& [peer, indices] : by_peer) {
    for (size_t pos = 0; pos < indices.size(); pos += kMaxBatchPages) {
      Chunk chunk;
      chunk.peer = peer;
      const size_t n = std::min<size_t>(kMaxBatchPages, indices.size() - pos);
      chunk.indices.assign(indices.begin() + pos, indices.begin() + pos + n);
      chunk.slots.reserve(n);
      for (const size_t i : chunk.indices) {
        chunk.slots.push_back(wants[i].slot);
      }
      chunks.push_back(std::move(chunk));
    }
  }
  // Fan out: every chunk's request is on the wire before any reply is
  // awaited, so reads to different peers overlap and the modeled fabric
  // charges them from a common start.
  for (Chunk& chunk : chunks) {
    chunk.future = cluster_.peer(chunk.peer).StartPageInBatch(chunk.slots);
  }
  const TimeNs fan_start = *now;
  TimeNs fan_done = *now;
  Status first_error = OkStatus();
  std::vector<uint8_t> staging;
  for (Chunk& chunk : chunks) {
    staging.resize(chunk.slots.size() * kPageSize);
    ServerPeer& peer = cluster_.peer(chunk.peer);
    Status joined =
        peer.JoinPageInBatch(std::move(chunk.future), chunk.slots.size(),
                             std::span<uint8_t>(staging));
    // Transient failure against a live connection: retry *this chunk only*.
    // Chunks that already joined keep their pages and their single charge —
    // re-fetching them would double-apply the batch on the wire and in the
    // stats (the BatchFetch partial-failure bug).
    for (int attempt = 1; !joined.ok() && attempt < params_.retry.max_attempts &&
                          ShouldRetry(chunk.peer, joined);
         ++attempt) {
      peer.mark_alive();
      TimeNs backoff_now = fan_start;
      ChargeBackoff(attempt, &backoff_now);
      fan_done = std::max(fan_done, backoff_now);
      joined = peer.JoinPageInBatch(peer.StartPageInBatch(chunk.slots), chunk.slots.size(),
                                    std::span<uint8_t>(staging));
    }
    if (!joined.ok()) {
      // Keep draining the remaining futures so the transport settles.
      if (first_error.ok()) {
        first_error = joined;
      }
      continue;
    }
    fan_done = std::max(fan_done, ChargePageBatchTransfer(fan_start, chunk.slots.size(),
                                                          chunk.peer));
    for (size_t j = 0; j < chunk.indices.size(); ++j) {
      (*out)[chunk.indices[j]] =
          PageBuffer(std::span<const uint8_t>(staging.data() + j * kPageSize, kPageSize));
    }
  }
  *now = fan_done;
  return first_error;
}

Result<size_t> RemotePagerBase::PickPeer(TimeNs* now) {
  if (params_.selection == ServerSelection::kRoundRobin) {
    return cluster_.NextUsable(&rr_cursor_);
  }
  const bool refresh = ++pageouts_since_refresh_ > kLoadRefreshInterval;
  if (refresh) {
    pageouts_since_refresh_ = 0;
    *now = ChargeControl(*now);  // One round of LOAD_QUERY traffic.
  }
  return cluster_.MostPromising(refresh);
}

Result<uint64_t> RemotePagerBase::RepairStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  // A policy without redundancy has nothing to restore: the coordinator's
  // job completes immediately and reads surface DATA_LOSS as before.
  (void)peer;
  (void)max_pages;
  (void)now;
  return 0;
}

Result<uint64_t> RemotePagerBase::MigrateStep(size_t peer, uint64_t max_pages, TimeNs* now) {
  (void)peer;
  (void)max_pages;
  (void)now;
  return 0;
}

Result<uint64_t> RemotePagerBase::RebalanceStep(uint64_t max_pages, TimeNs* now) {
  (void)max_pages;
  (void)now;
  return 0;
}

uint64_t RemotePagerBase::PagesOn(size_t peer) const {
  (void)peer;
  return 0;
}

void RemotePagerBase::AdoptLocal(const ClusterMap& map) {
  map_ = map;
  has_map_ = true;
  events_.Append(EventKind::kEpoch, "client",
                 "adopted map epoch=" + std::to_string(map.epoch()) + " members=" +
                     std::to_string(map.members().size()));
  // The map owns placement state from here on: every peer carries the epoch
  // (stamped into data requests), ACTIVE members take new pages, kLeaving and
  // absent members do not — but both keep serving reads for pages still on
  // them (stopped peers stay read-usable; only placement skips them).
  for (size_t i = 0; i < cluster_.size(); ++i) {
    ServerPeer& peer = cluster_.peer(i);
    peer.set_epoch(map_.epoch());
    const ClusterMember* member = map_.FindMember(static_cast<uint32_t>(i));
    peer.set_stopped(member == nullptr || member->state != ClusterMember::State::kActive);
  }
}

bool RemotePagerBase::AdoptClusterMap(const ClusterMap& map, TimeNs* now, bool publish) {
  if (has_map_ && map.epoch() <= map_.epoch()) {
    return false;
  }
  AdoptLocal(map);
  if (publish) {
    // Best-effort fan-out: a peer that misses the publish (dead, mid-restart)
    // learns the epoch from the next stamped request it denies, or from the
    // republish after its repair. The client is the map coordinator here —
    // the same central role the paper's pager already plays for placement.
    const std::vector<uint8_t> bytes = map_.Serialize();
    for (size_t i = 0; i < cluster_.size(); ++i) {
      ServerPeer& peer = cluster_.peer(i);
      if (!peer.alive() || !peer.transport().connected()) {
        continue;
      }
      (void)peer.PublishMap(map_.epoch(), bytes);
      *now = ChargeControl(*now, i);
    }
  }
  return true;
}

Status RemotePagerBase::RefreshClusterMap(TimeNs* now) {
  bool found = false;
  ClusterMap newest;
  for (size_t i = 0; i < cluster_.size(); ++i) {
    ServerPeer& peer = cluster_.peer(i);
    if (!peer.transport().connected()) {
      continue;
    }
    auto map = peer.QueryMap();
    *now = ChargeControl(*now, i);
    if (!map.ok()) {
      continue;  // No map there (or the peer just died) — keep scanning.
    }
    if (!found || map->epoch() > newest.epoch()) {
      newest = std::move(*map);
      found = true;
    }
  }
  last_map_refresh_ = *now;
  if (!found) {
    return UnavailableError("no peer returned a cluster map");
  }
  if (!has_map_ || newest.epoch() > map_.epoch()) {
    AdoptLocal(newest);
  }
  return OkStatus();
}

Result<size_t> RemotePagerBase::MapOwnerPeer(uint64_t page_id) const {
  if (!has_map_) {
    return FailedPreconditionError("no cluster map adopted");
  }
  const uint32_t owner = map_.OwnerOf(map_.GroupOf(page_id));
  if (owner >= cluster_.size()) {
    return InternalError("map owner " + std::to_string(owner) + " beyond cluster");
  }
  return static_cast<size_t>(owner);
}

void RemotePagerBase::NotePeerAdded(size_t i) {
  ServerPeer& peer = cluster_.peer(i);
  peer.AttachMetrics(&metrics_);
  peer.set_trace_source(tracer_.wire_id());
  events_.Append(EventKind::kMembership, "client", "peer " + peer.name() + " added");
  if (has_map_) {
    peer.set_epoch(map_.epoch());
    const ClusterMember* member = map_.FindMember(static_cast<uint32_t>(i));
    peer.set_stopped(member == nullptr || member->state != ClusterMember::State::kActive);
  }
}

Result<size_t> RemotePagerBase::PickPeerForPage(uint64_t page_id, TimeNs* now) {
  if (has_map_ && params_.map_refresh_interval > 0 &&
      *now - last_map_refresh_ >= params_.map_refresh_interval) {
    (void)RefreshClusterMap(now);  // Proactive; staleness is still recoverable.
  }
  if (has_map_) {
    auto owner = MapOwnerPeer(page_id);
    if (owner.ok() && cluster_.peer(*owner).usable()) {
      return owner;
    }
    // Owner dead or full: any usable peer keeps the write landing; the
    // rebalance job walks it home once the owner returns.
  }
  return PickPeer(now);
}

void RemotePagerBase::NoteStaleEpoch(int attempt, TimeNs* now) {
  ++stats_.stale_epoch_retries;
  events_.Append(EventKind::kStaleEpoch, "client",
                 "denied at attempt " + std::to_string(attempt) + ", refreshing map");
  (void)RefreshClusterMap(now);  // Best-effort: the retry re-tests the gate.
  ChargeBackoff(attempt, now);
}

}  // namespace rmp
