// Decorator adding a fixed per-transfer latency to any NetworkModel — the
// §4.5 busy-server experiment: a loaded server workstation schedules the
// memory-server process a little later, which the client sees as extra
// per-request latency (fractions of a millisecond for an interactive X/vi
// session, around a scheduling quantum for a cpu-bound competitor).

#ifndef SRC_NET_DELAYED_MODEL_H_
#define SRC_NET_DELAYED_MODEL_H_

#include <memory>
#include <string>

#include "src/net/network_model.h"

namespace rmp {

class DelayedNetworkModel final : public NetworkModel {
 public:
  DelayedNetworkModel(std::shared_ptr<const NetworkModel> base, DurationNs per_transfer_delay)
      : base_(std::move(base)), delay_(per_transfer_delay) {}

  DurationNs TransferTime(uint64_t bytes) const override {
    return base_->TransferTime(bytes) + delay_;
  }
  DurationNs ProtocolTime() const override { return base_->ProtocolTime(); }
  double EffectiveBandwidthMbps() const override {
    const DurationNs t = TransferTime(kPageSize);
    return t > 0 ? static_cast<double>(kPageSize) * 8.0 / ToSeconds(t) / 1e6 : 0.0;
  }
  std::string Name() const override { return base_->Name() + "+delay"; }

 private:
  std::shared_ptr<const NetworkModel> base_;
  DurationNs delay_;
};

}  // namespace rmp

#endif  // SRC_NET_DELAYED_MODEL_H_
