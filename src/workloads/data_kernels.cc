#include "src/workloads/data_kernels.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/rng.h"

namespace rmp {

Status FillRandom(VmArray<uint64_t>* array, TimeNs* now, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t i = 0; i < array->size(); ++i) {
    RMP_RETURN_IF_ERROR(array->Set(now, i, rng.Next()));
  }
  return OkStatus();
}

Status QuicksortVm(VmArray<uint64_t>* array, TimeNs* now) {
  if (array->size() < 2) {
    return OkStatus();
  }
  std::vector<std::pair<uint64_t, uint64_t>> stack;  // Inclusive ranges.
  stack.emplace_back(0, array->size() - 1);
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (lo >= hi) {
      continue;
    }
    // Insertion sort for tiny ranges keeps the stack shallow.
    if (hi - lo < 16) {
      for (uint64_t i = lo + 1; i <= hi; ++i) {
        RMP_ASSIGN_OR_RETURN(const uint64_t key, array->Get(now, i));
        uint64_t j = i;
        while (j > lo) {
          RMP_ASSIGN_OR_RETURN(const uint64_t prev, array->Get(now, j - 1));
          if (prev <= key) {
            break;
          }
          RMP_RETURN_IF_ERROR(array->Set(now, j, prev));
          --j;
        }
        RMP_RETURN_IF_ERROR(array->Set(now, j, key));
      }
      continue;
    }
    // Hoare partition around the middle element.
    RMP_ASSIGN_OR_RETURN(const uint64_t pivot, array->Get(now, lo + (hi - lo) / 2));
    uint64_t i = lo;
    uint64_t j = hi;
    for (;;) {
      for (;;) {
        RMP_ASSIGN_OR_RETURN(const uint64_t vi, array->Get(now, i));
        if (vi >= pivot) {
          break;
        }
        ++i;
      }
      for (;;) {
        RMP_ASSIGN_OR_RETURN(const uint64_t vj, array->Get(now, j));
        if (vj <= pivot) {
          break;
        }
        --j;
      }
      if (i >= j) {
        break;
      }
      RMP_ASSIGN_OR_RETURN(const uint64_t vi, array->Get(now, i));
      RMP_ASSIGN_OR_RETURN(const uint64_t vj, array->Get(now, j));
      RMP_RETURN_IF_ERROR(array->Set(now, i, vj));
      RMP_RETURN_IF_ERROR(array->Set(now, j, vi));
      ++i;
      if (j > 0) {
        --j;
      }
    }
    // Push larger half first so the smaller is processed next (bounded stack).
    if (j + 1 <= hi) {
      stack.emplace_back(j + 1, hi);
    }
    if (lo < j) {
      stack.emplace_back(lo, j);
    }
  }
  return OkStatus();
}

Status VerifySorted(const VmArray<uint64_t>& array, TimeNs* now) {
  if (array.size() < 2) {
    return OkStatus();
  }
  RMP_ASSIGN_OR_RETURN(uint64_t prev, array.Get(now, 0));
  for (uint64_t i = 1; i < array.size(); ++i) {
    RMP_ASSIGN_OR_RETURN(const uint64_t cur, array.Get(now, i));
    if (cur < prev) {
      return FailedPreconditionError("order violated at index " + std::to_string(i));
    }
    prev = cur;
  }
  return OkStatus();
}

Result<uint64_t> ChecksumVm(const VmArray<uint64_t>& array, TimeNs* now) {
  uint64_t sum = 0;
  for (uint64_t i = 0; i < array.size(); ++i) {
    RMP_ASSIGN_OR_RETURN(const uint64_t v, array.Get(now, i));
    sum += v * 0x9e3779b97f4a7c15ULL + i;
  }
  return sum;
}

namespace {

uint64_t FoldChecksum(const std::vector<uint64_t>& data) {
  uint64_t sum = 0;
  for (uint64_t i = 0; i < data.size(); ++i) {
    sum += data[i] * 0x9e3779b97f4a7c15ULL + i;
  }
  return sum;
}

}  // namespace

Result<uint64_t> TwoPassFilterVm(VmArray<uint64_t>* src, VmArray<uint64_t>* dst, TimeNs* now,
                                 int radius) {
  const uint64_t n = src->size();
  if (dst->size() != n) {
    return InvalidArgumentError("filter src/dst size mismatch");
  }
  // Pass 1: in-place prefix sums over the input (sequential read + write).
  uint64_t running = 0;
  for (uint64_t i = 0; i < n; ++i) {
    RMP_ASSIGN_OR_RETURN(const uint64_t v, src->Get(now, i));
    running += v;
    RMP_RETURN_IF_ERROR(src->Set(now, i, running));
  }
  // Pass 2 (backward, zigzag): windowed sums into the output image.
  const auto r = static_cast<uint64_t>(radius);
  for (uint64_t k = 0; k < n; ++k) {
    const uint64_t i = n - 1 - k;
    const uint64_t hi_idx = std::min(n - 1, i + r);
    RMP_ASSIGN_OR_RETURN(const uint64_t hi_sum, src->Get(now, hi_idx));
    uint64_t lo_sum = 0;
    if (i > r) {
      RMP_ASSIGN_OR_RETURN(lo_sum, src->Get(now, i - r - 1));
    }
    RMP_RETURN_IF_ERROR(dst->Set(now, i, hi_sum - lo_sum));
  }
  uint64_t sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    RMP_ASSIGN_OR_RETURN(const uint64_t v, dst->Get(now, i));
    sum += v * 0x9e3779b97f4a7c15ULL + i;
  }
  return sum;
}

uint64_t TwoPassFilterReference(uint64_t count, uint64_t seed, int radius) {
  Rng rng(seed);
  std::vector<uint64_t> data(count);
  for (auto& v : data) {
    v = rng.Next();
  }
  for (uint64_t i = 1; i < count; ++i) {
    data[i] += data[i - 1];
  }
  const auto r = static_cast<uint64_t>(radius);
  std::vector<uint64_t> out(count);
  for (uint64_t k = 0; k < count; ++k) {
    const uint64_t i = count - 1 - k;
    const uint64_t hi_sum = data[std::min(count - 1, i + r)];
    const uint64_t lo_sum = i > r ? data[i - r - 1] : 0;
    out[i] = hi_sum - lo_sum;
  }
  return FoldChecksum(out);
}


namespace {

// Diagonally dominant random matrix: guaranteed well-conditioned, so the
// solve's residual isolates data-path corruption from numerics.
double MatrixEntry(Rng* rng) { return rng->NextDouble() * 2.0 - 1.0; }

}  // namespace

Result<double> GaussSolveVm(PagedVm* vm, TimeNs* now, uint64_t base, uint64_t n, uint64_t seed) {
  // Layout: augmented matrix, n rows of (n + 1) doubles: [A | b].
  VmArray<double> m(vm, base, n * (n + 1));
  const uint64_t cols = n + 1;
  auto at = [cols](uint64_t r, uint64_t c) { return r * cols + c; };

  // Generate A (diagonally dominant) and b = A * ones, so x_true = ones.
  Rng rng(seed);
  for (uint64_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (uint64_t c = 0; c < n; ++c) {
      double v = MatrixEntry(&rng);
      if (c == r) {
        v += static_cast<double>(n);  // Dominant diagonal.
      }
      RMP_RETURN_IF_ERROR(m.Set(now, at(r, c), v));
      row_sum += v;
    }
    RMP_RETURN_IF_ERROR(m.Set(now, at(r, n), row_sum));  // b_r = sum of row.
  }

  // Forward elimination with partial pivoting.
  for (uint64_t k = 0; k < n; ++k) {
    uint64_t pivot = k;
    RMP_ASSIGN_OR_RETURN(double best, m.Get(now, at(k, k)));
    best = best < 0 ? -best : best;
    for (uint64_t r = k + 1; r < n; ++r) {
      RMP_ASSIGN_OR_RETURN(double v, m.Get(now, at(r, k)));
      const double mag = v < 0 ? -v : v;
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (pivot != k) {
      for (uint64_t c = k; c < cols; ++c) {
        RMP_ASSIGN_OR_RETURN(const double a, m.Get(now, at(k, c)));
        RMP_ASSIGN_OR_RETURN(const double b, m.Get(now, at(pivot, c)));
        RMP_RETURN_IF_ERROR(m.Set(now, at(k, c), b));
        RMP_RETURN_IF_ERROR(m.Set(now, at(pivot, c), a));
      }
    }
    RMP_ASSIGN_OR_RETURN(const double diag, m.Get(now, at(k, k)));
    if (diag == 0.0) {
      return FailedPreconditionError("singular matrix");
    }
    for (uint64_t r = k + 1; r < n; ++r) {
      RMP_ASSIGN_OR_RETURN(const double factor_num, m.Get(now, at(r, k)));
      const double factor = factor_num / diag;
      if (factor == 0.0) {
        continue;
      }
      for (uint64_t c = k; c < cols; ++c) {
        RMP_ASSIGN_OR_RETURN(const double a, m.Get(now, at(r, c)));
        RMP_ASSIGN_OR_RETURN(const double p, m.Get(now, at(k, c)));
        RMP_RETURN_IF_ERROR(m.Set(now, at(r, c), a - factor * p));
      }
    }
  }

  // Back substitution into column n, then compare with the all-ones truth.
  double max_error = 0.0;
  for (uint64_t ri = 0; ri < n; ++ri) {
    const uint64_t r = n - 1 - ri;
    RMP_ASSIGN_OR_RETURN(double acc, m.Get(now, at(r, n)));
    for (uint64_t c = r + 1; c < n; ++c) {
      RMP_ASSIGN_OR_RETURN(const double a, m.Get(now, at(r, c)));
      RMP_ASSIGN_OR_RETURN(const double x, m.Get(now, at(c, n)));
      acc -= a * x;
    }
    RMP_ASSIGN_OR_RETURN(const double diag, m.Get(now, at(r, r)));
    const double x = acc / diag;
    RMP_RETURN_IF_ERROR(m.Set(now, at(r, n), x));
    const double err = x - 1.0;
    max_error = std::max(max_error, err < 0 ? -err : err);
  }
  return max_error;
}

Result<uint64_t> MatrixVectorVm(PagedVm* vm, TimeNs* now, uint64_t base, uint64_t n,
                                uint64_t seed) {
  // Layout: x vector (n doubles), y vector (n doubles); A generated on the
  // fly and written through the VM row by row at the end of the space —
  // MVEC's fused generate-and-consume write stream.
  VmArray<double> x(vm, base, n);
  VmArray<double> y(vm, x.end_offset(), n);
  VmArray<double> row(vm, y.end_offset(), n);
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    RMP_RETURN_IF_ERROR(x.Set(now, i, rng.NextDouble()));
  }
  Rng a_rng(seed ^ 0xa5a5a5a5ull);
  for (uint64_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (uint64_t c = 0; c < n; ++c) {
      const double a = MatrixEntry(&a_rng);
      RMP_RETURN_IF_ERROR(row.Set(now, c, a));  // The write stream.
      RMP_ASSIGN_OR_RETURN(const double xv, x.Get(now, c));
      acc += a * xv;
    }
    RMP_RETURN_IF_ERROR(y.Set(now, r, acc));
  }
  // Fold y into an order-sensitive checksum (quantized to be exact).
  uint64_t sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    RMP_ASSIGN_OR_RETURN(const double v, y.Get(now, i));
    sum = sum * 1000003ull + static_cast<uint64_t>(static_cast<int64_t>(v * 1e6));
  }
  return sum;
}

uint64_t MatrixVectorReference(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) {
    v = rng.NextDouble();
  }
  Rng a_rng(seed ^ 0xa5a5a5a5ull);
  uint64_t sum = 0;
  for (uint64_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (uint64_t c = 0; c < n; ++c) {
      acc += MatrixEntry(&a_rng) * x[c];
    }
    sum = sum * 1000003ull + static_cast<uint64_t>(static_cast<int64_t>(acc * 1e6));
  }
  return sum;
}


}  // namespace rmp
