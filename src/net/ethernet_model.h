// Frame-level analytic model of a shared 10 Mbit/s CSMA/CD Ethernet.
//
// An 8 KB page does not travel as one unit: it is fragmented into MTU-sized
// frames, each paying header/preamble bytes, an inter-frame gap, and a
// per-frame driver/DMA cost. With the default parameters an 8 KB page costs
// 9.64 ms of wire time — the figure measured in §4.4 of the paper.
//
// Contention with background stations uses the classic slotted CSMA/CD
// analysis (Metcalfe-Boggs / Tanenbaum §3, which the paper cites): with k
// saturated stations the probability that some station acquires the channel
// in a contention slot is A = C(k,1) p (1-p)^(k-1) maximized at p = 1/k, and
// the channel wastes (1-A)/A slots per successful frame. Efficiency therefore
// degrades toward 1/e and per-station goodput collapses as k grows — the
// "throughput collapse" the paper observes on a loaded Ethernet (§4.6).

#ifndef SRC_NET_ETHERNET_MODEL_H_
#define SRC_NET_ETHERNET_MODEL_H_

#include <cstdint>
#include <string>

#include "src/net/network_model.h"
#include "src/util/units.h"

namespace rmp {

struct EthernetParams {
  double bandwidth_mbps = 10.0;
  uint32_t mtu_payload_bytes = 1460;      // TCP payload per frame.
  uint32_t frame_overhead_bytes = 58;     // Eth header+FCS+preamble + IP/TCP headers.
  DurationNs inter_frame_gap = Micros(9.6);
  // Per-frame host-side cost (driver, DMA setup). Calibrated so that an
  // 8 KB page costs 9.64 ms of wire time as measured in the paper (§4.4).
  DurationNs per_frame_host_cost = Micros(458.4);
  DurationNs slot_time = Micros(51.2);    // CSMA/CD contention slot.
  // Per-transfer TCP/IP protocol processing (paper §4.3: 1.6 ms/page).
  DurationNs protocol_time = Micros(1600);
  // Number of other stations saturating the segment with traffic; 0 models
  // the paper's "almost idle Ethernet".
  int background_stations = 0;
};

class EthernetModel final : public NetworkModel {
 public:
  explicit EthernetModel(const EthernetParams& params = EthernetParams());

  DurationNs TransferTime(uint64_t bytes) const override;
  DurationNs ProtocolTime() const override { return params_.protocol_time; }
  double EffectiveBandwidthMbps() const override;
  std::string Name() const override;

  // Channel efficiency with `stations` saturated senders (1.0 when alone).
  // Exposed for the §4.6 bench and for validation against the packet sim.
  double ContentionEfficiency(int stations) const;

  // Fraction of channel capacity this client obtains when competing with the
  // configured background stations (efficiency / (background + 1)).
  double ClientShare() const;

  const EthernetParams& params() const { return params_; }

  int FramesForBytes(uint64_t bytes) const;

 private:
  // Uncontended wire time for `bytes`.
  DurationNs RawTransferTime(uint64_t bytes) const;

  EthernetParams params_;
};

}  // namespace rmp

#endif  // SRC_NET_ETHERNET_MODEL_H_
