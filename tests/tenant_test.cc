// Multi-tenant QoS conformance (DESIGN.md §15; ctest label: tenant_smoke).
//
// The contract under test: with tenant policy configured, each tenant's
// occupancy is capped at its quota, its request rate is token-bucketed with
// priority lanes (pagein admits last-to-throttle, background first), slots
// are owned by the tenant that allocated them, and per-tenant ADVISE_STOP
// fires from the tenant's own quota — all without disturbing tenant 0, the
// legacy lane, or the policy-off server, which must behave exactly like the
// untenanted seed.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/testbed.h"
#include "src/proto/wire.h"
#include "src/server/memory_server.h"
#include "src/util/bytes.h"
#include "src/util/config.h"

namespace rmp {
namespace {

MemoryServerParams ParamsWithTenants(std::vector<TenantQuota> tenants, bool strict = false,
                                     uint64_t capacity = 4096) {
  MemoryServerParams params;
  params.name = "tenant-test";
  params.capacity_pages = capacity;
  params.tenants.tenants = std::move(tenants);
  params.tenants.strict = strict;
  return params;
}

Message TaggedAlloc(uint64_t id, uint64_t pages, uint16_t tenant) {
  Message request = MakeAllocRequest(id, pages);
  request.tenant = tenant;
  return request;
}

Message TaggedFree(uint64_t id, uint64_t first, uint64_t count, uint16_t tenant) {
  Message request = MakeFreeRequest(id, first, count);
  request.tenant = tenant;
  return request;
}

Message TaggedPageOut(uint64_t id, uint64_t slot, std::span<const uint8_t> page,
                      uint16_t tenant) {
  Message request = MakePageOut(id, slot, page);
  request.tenant = tenant;
  return request;
}

Message TaggedPageIn(uint64_t id, uint64_t slot, uint16_t tenant) {
  Message request = MakePageIn(id, slot);
  request.tenant = tenant;
  return request;
}

// --- Policy off: the legacy server ------------------------------------------

TEST(TenantTest, PolicyOffIgnoresTenantTags) {
  MemoryServer server;  // No tenant rows: enforcement compiled out of the path.
  EXPECT_FALSE(server.tenant_enforced());
  // A tagged request is served on the legacy path: no quota, no ownership,
  // no tenant echo on the reply.
  const Message granted = server.Handle(TaggedAlloc(1, 16, /*tenant=*/9));
  ASSERT_EQ(granted.status_code(), ErrorCode::kOk);
  EXPECT_EQ(granted.tenant, 0);
  EXPECT_EQ(server.TenantReservedPages(9), 0u);
  // Another tenant may free those slots: no ownership map exists.
  const Message freed = server.Handle(TaggedFree(2, granted.slot, 16, /*tenant=*/3));
  EXPECT_EQ(freed.status_code(), ErrorCode::kOk);
}

// --- Occupancy quotas --------------------------------------------------------

TEST(TenantTest, QuotaCapsOccupancyAndFreesCredit) {
  MemoryServer server(ParamsWithTenants({{.id = 7, .memory_quota_pages = 8}}));
  ASSERT_TRUE(server.tenant_enforced());

  const Message granted = server.Handle(TaggedAlloc(1, 8, 7));
  ASSERT_EQ(granted.status_code(), ErrorCode::kOk);
  EXPECT_EQ(granted.tenant, 7);
  EXPECT_EQ(server.TenantReservedPages(7), 8u);

  // The 9th page is denied even though the server has thousands free.
  const Message over = server.Handle(TaggedAlloc(2, 1, 7));
  EXPECT_EQ(over.status_code(), ErrorCode::kNoSpace);
  EXPECT_GT(server.free_pages(), 1000u);

  // Tenant 0 and other tenants are unaffected by 7's quota.
  EXPECT_EQ(server.Handle(TaggedAlloc(3, 64, 0)).status_code(), ErrorCode::kOk);

  // Freeing part of the run credits the quota back, pages become grantable.
  ASSERT_EQ(server.Handle(TaggedFree(4, granted.slot, 4, 7)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.TenantReservedPages(7), 4u);
  EXPECT_EQ(server.Handle(TaggedAlloc(5, 4, 7)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.TenantReservedPages(7), 8u);
}

TEST(TenantTest, CrashZeroesTenantReservations) {
  MemoryServer server(ParamsWithTenants({{.id = 3, .memory_quota_pages = 16}}));
  ASSERT_EQ(server.Handle(TaggedAlloc(1, 16, 3)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.TenantReservedPages(3), 16u);
  server.Crash();
  server.Restart();
  // The crash dropped every page; stale reservations must not deny the
  // tenant's re-population.
  EXPECT_EQ(server.TenantReservedPages(3), 0u);
  EXPECT_EQ(server.Handle(TaggedAlloc(2, 16, 3)).status_code(), ErrorCode::kOk);
}

// --- Slot ownership ----------------------------------------------------------

TEST(TenantTest, CrossTenantAccessIsRejected) {
  MemoryServer server(ParamsWithTenants({{.id = 7}, {.id = 9}}));
  const Message granted = server.Handle(TaggedAlloc(1, 2, 7));
  ASSERT_EQ(granted.status_code(), ErrorCode::kOk);
  const uint64_t slot = granted.slot;

  PageBuffer page;
  FillPattern(page.span(), 7);
  ASSERT_EQ(server.Handle(TaggedPageOut(2, slot, page.span(), 7)).status_code(),
            ErrorCode::kOk);

  // Tenant 9 can neither read, overwrite, nor free tenant 7's slots.
  EXPECT_EQ(server.Handle(TaggedPageIn(3, slot, 9)).status_code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.Handle(TaggedPageOut(4, slot, page.span(), 9)).status_code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.Handle(TaggedFree(5, slot, 2, 9)).status_code(),
            ErrorCode::kFailedPrecondition);
  // The page is untouched and still tenant 7's.
  auto read_back = server.Load(slot);
  ASSERT_TRUE(read_back.ok());
  EXPECT_TRUE(CheckPattern(read_back->span(), 7));

  // Tenant 0 is the legacy/recovery lane: it may touch anything.
  EXPECT_EQ(server.Handle(TaggedPageIn(6, slot, 0)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.Handle(TaggedFree(7, slot, 2, 0)).status_code(), ErrorCode::kOk);
}

// --- Per-tenant ADVISE_STOP --------------------------------------------------

TEST(TenantTest, AdviseStopFiresFromTheTenantQuotaAlone) {
  MemoryServer server(ParamsWithTenants(
      {{.id = 4, .memory_quota_pages = 10, .advise_stop_fraction = 0.5}, {.id = 5}}));
  PageBuffer page;
  FillPattern(page.span(), 1);

  const Message small = server.Handle(TaggedAlloc(1, 4, 4));
  ASSERT_EQ(small.status_code(), ErrorCode::kOk);
  Message ack = server.Handle(TaggedPageOut(2, small.slot, page.span(), 4));
  ASSERT_EQ(ack.status_code(), ErrorCode::kOk);
  EXPECT_FALSE(ack.advise_stop());  // 4 of 10 reserved: under the fraction.

  const Message more = server.Handle(TaggedAlloc(3, 2, 4));
  ASSERT_EQ(more.status_code(), ErrorCode::kOk);
  EXPECT_TRUE(server.TenantShouldAdviseStop(4));  // 6 >= 0.5 * 10.
  ack = server.Handle(TaggedPageOut(4, more.slot, page.span(), 4));
  ASSERT_EQ(ack.status_code(), ErrorCode::kOk);
  EXPECT_TRUE(ack.advise_stop());

  // The server as a whole has room, so other tenants see no backpressure.
  EXPECT_FALSE(server.ShouldAdviseStop());
  const Message other = server.Handle(TaggedAlloc(5, 1, 5));
  ASSERT_EQ(other.status_code(), ErrorCode::kOk);
  ack = server.Handle(TaggedPageOut(6, other.slot, page.span(), 5));
  ASSERT_EQ(ack.status_code(), ErrorCode::kOk);
  EXPECT_FALSE(ack.advise_stop());
}

// --- Rate limiting and priority lanes ---------------------------------------

TEST(TenantTest, RateDenialsThrottleBackgroundBeforePageoutBeforePagein) {
  // rate 1/s means no meaningful refill during the test; burst 16 seeds the
  // bucket. Lane reserves: migrate keeps burst/2 = 8 untouched, pageout-ish
  // keeps burst/8 = 2, pagein drains to zero.
  MemoryServer server(
      ParamsWithTenants({{.id = 6, .rate_pages_per_sec = 1, .burst_pages = 16}}));
  const Message granted = server.Handle(TaggedAlloc(1, 64, 6));
  ASSERT_EQ(granted.status_code(), ErrorCode::kOk);
  PageBuffer page;
  FillPattern(page.span(), 6);
  uint64_t id = 100;

  // Background (MIGRATE) throttles first: it may only spend down to the
  // reserve floor. (Migrates target unwritten slots; the admission charge
  // happens before dispatch, which then reports NotFound.)
  int migrates = 0;
  Message reply;
  for (; migrates < 32; ++migrates) {
    Message request = MakeMigrate(++id, granted.slot + 60);
    request.tenant = 6;
    reply = server.Handle(request);
    if (reply.status_code() == ErrorCode::kResourceExhausted) {
      break;
    }
  }
  EXPECT_GE(migrates, 8);   // 16 - 8 reserved.
  EXPECT_LT(migrates, 12);  // Refill at 1/s cannot add more than a token or two.
  EXPECT_EQ(reply.type, MessageType::kMigrateReply);

  // Pageouts still land (reserve 2), then throttle...
  int pageouts = 0;
  for (; pageouts < 32; ++pageouts) {
    reply = server.Handle(TaggedPageOut(++id, granted.slot + pageouts, page.span(), 6));
    if (reply.status_code() == ErrorCode::kResourceExhausted) {
      break;
    }
  }
  EXPECT_GE(pageouts, 1);
  EXPECT_EQ(reply.type, MessageType::kPageOutAck);
  EXPECT_TRUE(reply.advise_stop());  // A rate denial always asks for backoff.

  // ...while pageins keep draining the last tokens before throttling too.
  int pageins = 0;
  for (; pageins < 32; ++pageins) {
    reply = server.Handle(TaggedPageIn(++id, granted.slot, 6));
    if (reply.status_code() == ErrorCode::kResourceExhausted) {
      break;
    }
  }
  EXPECT_GE(pageins, 1);
  EXPECT_EQ(reply.type, MessageType::kPageInReply);

  // Control traffic is never rate-gated: a dry bucket still answers LOAD.
  Message load = MakeLoadQuery(++id);
  load.tenant = 6;
  EXPECT_EQ(server.Handle(load).type, MessageType::kLoadReport);
}

// --- Strict vs attributed unknown tenants ------------------------------------

TEST(TenantTest, StrictPolicyRejectsUnknownTenants) {
  MemoryServer server(ParamsWithTenants({{.id = 2}}, /*strict=*/true));
  EXPECT_EQ(server.Handle(TaggedAlloc(1, 1, 99)).status_code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(server.Handle(TaggedAlloc(2, 1, 2)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.Handle(TaggedAlloc(3, 1, 0)).status_code(), ErrorCode::kOk);
}

TEST(TenantTest, UnknownTenantsAreAttributedWhenNotStrict) {
  MemoryServer server(ParamsWithTenants({{.id = 2, .memory_quota_pages = 4}}));
  // Tenant 42 has no quota row: unlimited, but charged under its own id.
  const Message granted = server.Handle(TaggedAlloc(1, 32, 42));
  ASSERT_EQ(granted.status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.TenantReservedPages(42), 32u);
  EXPECT_EQ(server.TenantReservedPages(2), 0u);
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("tenant.42."), std::string::npos) << stats;
}

// --- Config parsing ----------------------------------------------------------

TEST(TenantTest, ApplyTenantConfigParsesQuotaRows) {
  auto config = Config::Parse(
      "tenant.strict = true\n"
      "tenant.7.quota_pages = 128\n"
      "tenant.7.rate = 2000\n"
      "tenant.7.burst = 32\n"
      "tenant.7.advise_fraction = 0.5\n"
      "tenant.9.quota_pages = 64\n");
  ASSERT_TRUE(config.ok());
  TenantPolicyParams params;
  ASSERT_TRUE(ApplyTenantConfig(*config, &params).ok());
  EXPECT_TRUE(params.strict);
  ASSERT_EQ(params.tenants.size(), 2u);
  const TenantQuota& seven =
      params.tenants[0].id == 7 ? params.tenants[0] : params.tenants[1];
  EXPECT_EQ(seven.memory_quota_pages, 128u);
  EXPECT_EQ(seven.rate_pages_per_sec, 2000u);
  EXPECT_EQ(seven.burst_pages, 32u);
  EXPECT_DOUBLE_EQ(seven.advise_stop_fraction, 0.5);
}

TEST(TenantTest, ApplyTenantConfigRejectsHostileKeys) {
  TenantPolicyParams params;
  for (const char* text : {"tenant.0.quota_pages = 8\n",   // The legacy lane.
                           "tenant.7.mystery = 1\n",       // Unknown field.
                           "tenant.999999.quota_pages = 1\n",  // Past kMaxTenantId.
                           "tenant.7x.quota_pages = 1\n"}) {   // Non-numeric id.
    auto config = Config::Parse(text);
    ASSERT_TRUE(config.ok());
    EXPECT_FALSE(ApplyTenantConfig(*config, &params).ok()) << text;
  }
}

// --- Testbed plumbing --------------------------------------------------------

TEST(TenantTest, TestbedStampsClientTenantAndSurfacesMetrics) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.tenants.tenants = {{.id = 5, .memory_quota_pages = 4096}};
  params.client_tenant = 5;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  ASSERT_TRUE((*bed)->Preload(64).ok());
  // Every preload pageout was attributed to tenant 5 on some server.
  uint64_t reserved = 0;
  for (size_t i = 0; i < (*bed)->server_count(); ++i) {
    reserved += (*bed)->server(i).TenantReservedPages(5);
  }
  EXPECT_GE(reserved, 64u);
  const std::string dump = (*bed)->DumpMetrics();
  EXPECT_NE(dump.find("tenant.5."), std::string::npos);
}

// --- Concurrent multi-tenant churn (the TSan target) -------------------------

TEST(TenantTest, ConcurrentTenantsChurnWithoutRacesOrLeaks) {
  MemoryServer server(ParamsWithTenants({{.id = 1, .memory_quota_pages = 256},
                                         {.id = 2, .memory_quota_pages = 256},
                                         {.id = 3, .memory_quota_pages = 256}},
                                        /*strict=*/false, /*capacity=*/8192));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint16_t tenant = 1; tenant <= 4; ++tenant) {  // 4 has no row: attributed.
    threads.emplace_back([&server, &failures, tenant] {
      PageBuffer page;
      FillPattern(page.span(), tenant);
      uint64_t id = static_cast<uint64_t>(tenant) << 32;
      for (int iter = 0; iter < 50; ++iter) {
        const Message granted = server.Handle(TaggedAlloc(++id, 4, tenant));
        if (granted.status_code() != ErrorCode::kOk) {
          failures.fetch_add(1);
          continue;
        }
        for (uint64_t s = 0; s < 4; ++s) {
          if (server.Handle(TaggedPageOut(++id, granted.slot + s, page.span(), tenant))
                  .status_code() != ErrorCode::kOk) {
            failures.fetch_add(1);
          }
        }
        const Message read = server.Handle(TaggedPageIn(++id, granted.slot, tenant));
        if (read.status_code() != ErrorCode::kOk ||
            !CheckPattern(read.payload, tenant)) {
          failures.fetch_add(1);
        }
        if (server.Handle(TaggedFree(++id, granted.slot, 4, tenant)).status_code() !=
            ErrorCode::kOk) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // A tenant-0 legacy thread churns alongside, as recovery traffic would.
  threads.emplace_back([&server, &failures] {
    PageBuffer page;
    FillPattern(page.span(), 99);
    uint64_t id = 1ull << 48;
    for (int iter = 0; iter < 50; ++iter) {
      const Message granted = server.Handle(TaggedAlloc(++id, 2, 0));
      if (granted.status_code() != ErrorCode::kOk) {
        failures.fetch_add(1);
        continue;
      }
      (void)server.Handle(TaggedPageOut(++id, granted.slot, page.span(), 0));
      if (server.Handle(TaggedFree(++id, granted.slot, 2, 0)).status_code() !=
          ErrorCode::kOk) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Every run was freed: no reservation leaks survive the churn.
  for (uint16_t tenant = 1; tenant <= 4; ++tenant) {
    EXPECT_EQ(server.TenantReservedPages(tenant), 0u) << "tenant " << tenant;
  }
  EXPECT_EQ(server.live_pages(), 0u);
}

}  // namespace
}  // namespace rmp
