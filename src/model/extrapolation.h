// The paper's §4.3 bandwidth-scaling extrapolation, verbatim:
//
//   btime = etime - utime - systime - inittime - transfers * pptime
//   expected_etime(X) = utime + systime + inittime + transfers * pptime
//                       + btime / X
//
// where pptime = 1.6 ms of protocol processing per page transfer (measured
// for TCP/IP on the DEC Alpha) and X is the bandwidth multiple. The protocol
// term is CPU-bound and does not shrink with a faster wire — which is why
// ETHERNET*10 lands ~17% above ALL_MEMORY rather than converging to it.

#ifndef SRC_MODEL_EXTRAPOLATION_H_
#define SRC_MODEL_EXTRAPOLATION_H_

#include <cstdint>

#include "src/model/run_simulator.h"

namespace rmp {

inline constexpr double kPaperProtocolSecondsPerTransfer = 0.0016;

struct TimeDecomposition {
  double utime_s = 0.0;
  double systime_s = 0.0;
  double inittime_s = 0.0;
  int64_t page_transfers = 0;
  double pptime_s = 0.0;  // Total protocol time: transfers * per-transfer.
  double btime_s = 0.0;   // Bandwidth-dependent blocking time.
};

// Splits a measured run into the five §4.3 components.
TimeDecomposition Decompose(const RunResult& run,
                            double protocol_s_per_transfer = kPaperProtocolSecondsPerTransfer);

// Predicted completion time on a network with `bandwidth_factor` times the
// measured bandwidth (1.0 reproduces the measurement).
double ExpectedElapsedSeconds(const TimeDecomposition& d, double bandwidth_factor);

// Lower bound: the machine had enough memory for the whole working set.
double AllMemorySeconds(const TimeDecomposition& d);

}  // namespace rmp

#endif  // SRC_MODEL_EXTRAPOLATION_H_
