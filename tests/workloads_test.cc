#include "src/workloads/workload.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/model/run_simulator.h"

namespace rmp {
namespace {

TEST(WorkloadsTest, PaperSetHasSixApplications) {
  const auto workloads = MakePaperWorkloads();
  ASSERT_EQ(workloads.size(), 6u);
  EXPECT_EQ(workloads[0]->info().name, "MVEC");
  EXPECT_EQ(workloads[1]->info().name, "GAUSS");
  EXPECT_EQ(workloads[2]->info().name, "QSORT");
  EXPECT_EQ(workloads[3]->info().name, "FFT");
  EXPECT_EQ(workloads[4]->info().name, "FILTER");
  EXPECT_EQ(workloads[5]->info().name, "CC");
}

TEST(WorkloadsTest, PaperInputSizes) {
  EXPECT_EQ(MakeGauss()->info().data_bytes, 1700ull * 1700 * 8);
  EXPECT_EQ(MakeMvec()->info().data_bytes, 2100ull * 2100 * 8 + 2 * 2100 * 8);
  EXPECT_EQ(MakeQsort()->info().data_bytes, 3000ull * kPageSize);
  EXPECT_EQ(MakeFft(24.0)->info().data_bytes, 24ull * kMiB);
  EXPECT_EQ(MakeFilter()->info().data_bytes, 24ull * kMiB);  // In + out images.
}

TEST(WorkloadsTest, LookupByName) {
  for (const char* name : {"MVEC", "GAUSS", "QSORT", "FFT", "FILTER", "CC"}) {
    auto workload = MakeWorkloadByName(name);
    ASSERT_TRUE(workload.ok()) << name;
    EXPECT_EQ((*workload)->info().name, name);
  }
  EXPECT_EQ(MakeWorkloadByName("NOPE").status().code(), ErrorCode::kNotFound);
}

TEST(WorkloadsTest, AccessCountsAreDeterministic) {
  for (const auto& workload : MakePaperWorkloads()) {
    const int64_t first = workload->access_count();
    EXPECT_GT(first, 0) << workload->info().name;
    EXPECT_EQ(workload->access_count(), first);
    // A fresh instance of the same workload agrees.
    auto again = MakeWorkloadByName(workload->info().name);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*again)->access_count(), first) << workload->info().name;
  }
}

TEST(WorkloadsTest, FftComputeScalesWithInput) {
  const auto small = MakeFft(17.0)->info();
  const auto large = MakeFft(24.0)->info();
  EXPECT_LT(small.user_seconds, large.user_seconds);
  // 24 MB anchors the paper's measured decomposition.
  EXPECT_NEAR(large.user_seconds, 66.138, 1e-6);
  EXPECT_NEAR(large.system_seconds, 3.133, 1e-6);
  EXPECT_NEAR(large.init_seconds, 0.21, 1e-6);
}

// The Fig. 3 cliff: FFT at 17 MB fits in 18 MB of frames and must not page;
// FFT at 24 MB must.
TEST(WorkloadsTest, FftPagingCliff) {
  for (const double mb : {17.0, 24.0}) {
    TestbedParams params;
    params.policy = Policy::kNoReliability;
    params.data_servers = 2;
    params.server_capacity_pages = 4096;
    auto bed = Testbed::Create(params);
    ASSERT_TRUE(bed.ok());
    RunConfig config;
    config.physical_frames = 2304;  // 18 MB.
    auto run = SimulateRun(*MakeFft(mb), &(*bed)->backend(), config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (mb < 18.0) {
      EXPECT_EQ(run->vm.pageins, 0) << mb;
      EXPECT_EQ(run->vm.pageouts, 0) << mb;
    } else {
      EXPECT_GT(run->vm.pageins, 500) << mb;
      EXPECT_GT(run->vm.pageouts, 500) << mb;
    }
  }
}

// MVEC's published signature: "many pageouts and almost no pageins".
TEST(WorkloadsTest, MvecIsPageoutDominated) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 8192;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = 2304;
  auto run = SimulateRun(*MakeMvec(), &(*bed)->backend(), config);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->vm.pageouts, 1000);
  EXPECT_LT(run->vm.pageins, run->vm.pageouts / 20);
}

// Every workload's virtual accesses stay inside its declared footprint.
class WorkloadBoundsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadBoundsTest, AccessesWithinAddressSpace) {
  auto workload = MakeWorkloadByName(GetParam());
  ASSERT_TRUE(workload.ok());
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 8192;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  RunConfig config;
  config.physical_frames = 2304;
  // SimulateRun sizes the VM from info().data_bytes (+small headroom); any
  // out-of-range touch would fail the run.
  auto run = SimulateRun(**workload, &(*bed)->backend(), config);
  EXPECT_TRUE(run.ok()) << GetParam() << ": " << run.status().ToString();
  EXPECT_EQ(run->vm.accesses, (*workload)->access_count());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadBoundsTest,
                         ::testing::Values("MVEC", "GAUSS", "QSORT", "FFT", "FILTER", "CC"));

}  // namespace
}  // namespace rmp
