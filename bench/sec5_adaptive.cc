// §5 "Network load" (future work, implemented here): an adaptive pager that
// measures per-request service time and switches pageout routing between
// remote memory and the local disk. Sweep the Ethernet's background load;
// the adaptive policy should track the better of the two fixed choices.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/adaptive.h"
#include "src/core/no_reliability.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

struct AdaptiveRig {
  std::vector<std::unique_ptr<MemoryServer>> servers;
  std::unique_ptr<AdaptiveBackend> backend;
};

AdaptiveRig MakeAdaptive(int background, uint64_t total_pages) {
  AdaptiveRig rig;
  Cluster cluster;
  for (int i = 0; i < 2; ++i) {
    MemoryServerParams params;
    params.name = "ws" + std::to_string(i);
    params.capacity_pages = total_pages;
    rig.servers.push_back(std::make_unique<MemoryServer>(params));
    cluster.AddPeer(params.name, std::make_unique<InProcTransport>(rig.servers.back().get()));
  }
  auto fabric = std::make_shared<NetworkFabric>(PaperEthernet(background));
  auto remote =
      std::make_unique<NoReliabilityBackend>(std::move(cluster), fabric, RemotePagerParams{});
  auto disk = DiskBackend::Create(DiskParams(), total_pages + 1024);
  rig.backend = std::make_unique<AdaptiveBackend>(
      std::move(remote), std::make_unique<DiskBackend>(std::move(*disk)));
  return rig;
}

int Main() {
  std::printf("=== §5 future work: load-adaptive pageout routing ===\n\n");
  std::printf("%12s %12s %12s %12s %10s\n", "background", "REMOTE s", "DISK s", "ADAPTIVE s",
              "switches");
  const auto fft = MakeFft(24.0);
  const uint64_t total_pages = PagesForBytes(fft->info().data_bytes) + 32;
  for (int background : {0, 1, 2, 4, 6}) {
    PolicyRunConfig remote_config;
    remote_config.policy = Policy::kNoReliability;
    remote_config.data_servers = 2;
    remote_config.network = PaperEthernet(background);
    auto remote = RunWorkloadUnderPolicy(*fft, remote_config);

    PolicyRunConfig disk_config;
    disk_config.policy = Policy::kDisk;
    auto disk = RunWorkloadUnderPolicy(*fft, disk_config);

    AdaptiveRig rig = MakeAdaptive(background, total_pages);
    RunConfig run_config;
    run_config.physical_frames = kPaperFrames;
    auto adaptive = SimulateRun(*fft, rig.backend.get(), run_config);

    if (!remote.ok() || !disk.ok() || !adaptive.ok()) {
      std::printf("%12d FAILED\n", background);
      continue;
    }
    std::printf("%12d %12.2f %12.2f %12.2f %10lld\n", background, remote->etime_s, disk->etime_s,
                adaptive->etime_s,
                static_cast<long long>(rig.backend->switches_to_disk() +
                                       rig.backend->switches_to_network()));
  }
  std::printf("\n(adaptive should track the better fixed choice at every load level;\n"
              " the paper proposed exactly this threshold scheme in §5)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
