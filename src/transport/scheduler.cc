#include "src/transport/scheduler.h"

#include <algorithm>
#include <chrono>

namespace rmp {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view TrafficClassName(TrafficClass c) {
  switch (c) {
    case TrafficClass::kPagein:
      return "pagein";
    case TrafficClass::kPageout:
      return "pageout";
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kBackground:
      return "background";
  }
  return "unknown";
}

TrafficClass ClassifyMessage(MessageType type) {
  switch (type) {
    case MessageType::kPageIn:
    case MessageType::kPageInReply:
    case MessageType::kPageInBatch:
    case MessageType::kPageInBatchReply:
      return TrafficClass::kPagein;
    case MessageType::kPageOut:
    case MessageType::kPageOutAck:
    case MessageType::kPageOutBatch:
    case MessageType::kPageOutBatchAck:
    case MessageType::kDeltaPageOut:
    case MessageType::kXorMerge:
    case MessageType::kXorMergeAck:
      return TrafficClass::kPageout;
    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatAck:
    case MessageType::kMigrate:
    case MessageType::kMigrateReply:
      return TrafficClass::kBackground;
    default:
      return TrafficClass::kControl;
  }
}

Result<SchedulerOptions> SchedulerOptions::FromConfig(const Config& config) {
  SchedulerOptions options;
  struct KeyMap {
    const char* key;
    int index;
  };
  const KeyMap keys[] = {
      {"scheduler.weight_pagein", 0},
      {"scheduler.weight_pageout", 1},
      {"scheduler.weight_control", 2},
      {"scheduler.weight_background", 3},
  };
  for (const auto& [key, index] : keys) {
    auto weight = config.GetInt(key, options.weights[index]);
    if (!weight.ok()) {
      return weight.status();
    }
    if (*weight < 1 || *weight > 1024) {
      return InvalidArgumentError(std::string(key) + " out of range [1, 1024]");
    }
    options.weights[index] = static_cast<int>(*weight);
  }
  auto lanes = config.GetInt("scheduler.lanes_per_session", options.lanes_per_session);
  if (!lanes.ok()) {
    return lanes.status();
  }
  if (*lanes < 1 || *lanes > 256) {
    return InvalidArgumentError("scheduler.lanes_per_session out of range [1, 256]");
  }
  options.lanes_per_session = static_cast<int>(*lanes);
  return options;
}

FairShareScheduler::FairShareScheduler(SchedulerOptions options,
                                       const std::string& metric_prefix)
    : options_(options),
      queued_gauge_(*MetricsRegistry::Global().GetGauge(metric_prefix + ".queued")),
      dispatch_latency_us_(*MetricsRegistry::Global().GetHistogram(
          metric_prefix + ".dispatch_latency_us",
          HistogramOptions{1.0, 10e6, 48, /*log_scale=*/true})) {
  for (int c = 0; c < kTrafficClasses; ++c) {
    served_[c] = MetricsRegistry::Global().GetCounter(
        metric_prefix + ".served_" + std::string(TrafficClassName(static_cast<TrafficClass>(c))));
    credits_[c] = options_.weights[c];
  }
}

FairShareScheduler::~FairShareScheduler() { Stop(); }

std::shared_ptr<FairShareScheduler::Session> FairShareScheduler::AddSession(
    std::shared_ptr<void> owner) {
  auto session = std::make_shared<Session>();
  session->owner = std::move(owner);
  session->lanes.resize(static_cast<size_t>(options_.lanes_per_session));
  std::lock_guard<std::mutex> lock(mutex_);
  session->id = next_session_id_++;
  return session;
}

void FairShareScheduler::RemoveSession(const std::shared_ptr<Session>& session) {
  if (session == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session->dead) {
    return;
  }
  session->dead = true;
  // Drop queued items; in-service items finish (the worker holds the owner
  // backref alive through its Item copy). Ring entries for this session are
  // skipped lazily in Next.
  int64_t dropped = 0;
  for (Lane& lane : session->lanes) {
    dropped += static_cast<int64_t>(lane.queue.size());
    lane.queue.clear();
    lane.scheduled = false;
  }
  if (dropped > 0) {
    queued_gauge_.Add(-dropped);
  }
  session->owner.reset();
}

bool FairShareScheduler::Submit(const std::shared_ptr<Session>& session, Message request) {
  Item item;
  item.enqueue_ns = NowNanos();
  const int lane_idx =
      static_cast<int>(request.slot % static_cast<uint64_t>(options_.lanes_per_session));
  item.lane = lane_idx;
  item.session = session;
  item.request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || session->dead) {
      return false;
    }
    item.owner = session->owner;
    Lane& lane = session->lanes[static_cast<size_t>(lane_idx)];
    lane.queue.push_back(std::move(item));
    queued_gauge_.Add(1);
    if (!lane.scheduled && !lane.running) {
      EnqueueLaneLocked(session, lane_idx);
    }
    WakeOneLocked();
  }
  return true;
}

void FairShareScheduler::WakeOneLocked() {
  if (parked_.empty()) {
    return;
  }
  Waiter* waiter = parked_.back();
  parked_.pop_back();
  waiter->signaled = true;
  // Signaled under the mutex on purpose: the waiter's wait() cannot return
  // (and the worker thread cannot exit, destroying the thread-local Waiter)
  // until it reacquires the lock we hold, so the condvar stays alive for the
  // duration of the notify.
  waiter->cv.notify_one();
}

void FairShareScheduler::EnqueueLaneLocked(const std::shared_ptr<Session>& session, int lane) {
  Lane& state = session->lanes[static_cast<size_t>(lane)];
  // The lane joins the ring of the class its *head* request belongs to; a
  // lane mixing classes re-classifies every time it re-enters the ring.
  const TrafficClass c = ClassifyMessage(state.queue.front().request.type);
  rings_[static_cast<int>(c)].push_back(RingEntry{session, lane});
  state.scheduled = true;
}

bool FairShareScheduler::HasRunnableLocked() const {
  for (const auto& ring : rings_) {
    if (!ring.empty()) {
      return true;
    }
  }
  return false;
}

int FairShareScheduler::PickClassLocked() {
  // Two passes: first spend existing credit in priority order, then refill
  // everyone and take the highest-priority non-empty ring. The refill is the
  // fairness engine — weights bound each class's share of dispatch slots
  // under contention without ever starving a class outright.
  for (int pass = 0; pass < 2; ++pass) {
    for (int c = 0; c < kTrafficClasses; ++c) {
      if (!rings_[c].empty() && credits_[c] > 0) {
        return c;
      }
    }
    for (int c = 0; c < kTrafficClasses; ++c) {
      credits_[c] = options_.weights[c];
    }
  }
  return -1;  // No runnable lane at all.
}

bool FairShareScheduler::DispatchLocked(Item* out) {
  // Stale ring entries (RemoveSession purged the lane) are skipped here, so
  // one call may pop several entries before producing an item.
  while (HasRunnableLocked()) {
    const int c = PickClassLocked();
    if (c < 0) {
      return false;
    }
    RingEntry entry = std::move(rings_[c].front());
    rings_[c].pop_front();
    Lane& lane = entry.session->lanes[static_cast<size_t>(entry.lane)];
    lane.scheduled = false;
    if (entry.session->dead || lane.queue.empty()) {
      continue;
    }
    credits_[c] -= 1;
    *out = std::move(lane.queue.front());
    lane.queue.pop_front();
    lane.running = true;
    queued_gauge_.Add(-1);
    served_[c]->Increment();
    dispatch_latency_us_.Observe(static_cast<double>(NowNanos() - out->enqueue_ns) / 1000.0);
    return true;
  }
  return false;
}

bool FairShareScheduler::Next(Item* out) {
  // Workers park LIFO: the most recently parked worker is woken first, so a
  // light load is served by a small hot subset of the pool while the rest
  // stay parked. Waking FIFO (a bare condition variable's typical order)
  // rotates every dispatch to a cold thread and measurably hurts a
  // single-core pipeline.
  static thread_local Waiter waiter;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (DispatchLocked(out)) {
      return true;
    }
    if (stopped_) {
      return false;
    }
    waiter.signaled = false;
    parked_.push_back(&waiter);
    waiter.cv.wait(lock, [&] { return waiter.signaled || stopped_; });
    if (!waiter.signaled) {
      // Woken by Stop's broadcast (or spuriously): unpark ourselves.
      auto it = std::find(parked_.begin(), parked_.end(), &waiter);
      if (it != parked_.end()) {
        parked_.erase(it);
      }
    }
  }
}

bool FairShareScheduler::TryNext(Item* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  return DispatchLocked(out);
}

bool FairShareScheduler::FinishLocked(const std::shared_ptr<Session>& session, int lane_idx) {
  Lane& lane = session->lanes[static_cast<size_t>(lane_idx)];
  lane.running = false;
  if (!session->dead && !lane.queue.empty() && !lane.scheduled) {
    EnqueueLaneLocked(session, lane_idx);
    return true;
  }
  return false;
}

void FairShareScheduler::Done(const Item& item) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (FinishLocked(item.session, item.lane)) {
    WakeOneLocked();
  }
}

bool FairShareScheduler::DoneAndNext(const std::shared_ptr<Session>& session, int lane,
                                     Item* out) {
  static thread_local Waiter waiter;
  std::unique_lock<std::mutex> lock(mutex_);
  FinishLocked(session, lane);
  for (;;) {
    if (DispatchLocked(out)) {
      if (HasRunnableLocked()) {
        WakeOneLocked();
      }
      return true;
    }
    if (stopped_) {
      return false;
    }
    waiter.signaled = false;
    parked_.push_back(&waiter);
    waiter.cv.wait(lock, [&] { return waiter.signaled || stopped_; });
    if (!waiter.signaled) {
      auto it = std::find(parked_.begin(), parked_.end(), &waiter);
      if (it != parked_.end()) {
        parked_.erase(it);
      }
    }
  }
}

void FairShareScheduler::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  // Under the mutex for the same lifetime reason as WakeOneLocked: a worker
  // may destroy its thread-local Waiter the moment it observes stopped_.
  for (Waiter* waiter : parked_) {
    waiter->cv.notify_one();
  }
  parked_.clear();
}

}  // namespace rmp
