#include "src/util/checksum.h"

#include <array>
#include <cstring>

namespace rmp {
namespace {

// Eight shifted lookup tables for one reflected polynomial: t[0] is the
// classic byte-at-a-time table, t[k] advances a byte through k+1 zero bytes.
struct SliceTables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

SliceTables BuildTables(uint32_t reflected_poly) {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (reflected_poly ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables.t[0][i];
    for (int s = 1; s < 8; ++s) {
      c = tables.t[0][c & 0xffu] ^ (c >> 8);
      tables.t[s][i] = c;
    }
  }
  return tables;
}

const SliceTables& IeeeTables() {
  static const SliceTables tables = BuildTables(0xedb88320u);
  return tables;
}

const SliceTables& CastagnoliTables() {
  static const SliceTables tables = BuildTables(0x82f63b78u);
  return tables;
}

uint32_t SliceBy8(const SliceTables& tables, uint32_t crc, const uint8_t* p, size_t n) {
  const auto& t = tables.t;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
          t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RMP_HAVE_X86_CRC32C 1

inline uint64_t HwCrc32q(uint64_t crc, uint64_t val) {
  asm("crc32q %1, %0" : "+r"(crc) : "rm"(val));
  return crc;
}

inline uint32_t HwCrc32b(uint32_t crc, uint8_t val) {
  asm("crc32b %1, %0" : "+r"(crc) : "rm"(val));
  return crc;
}

uint32_t Crc32cHardware(uint32_t crc, const uint8_t* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = HwCrc32q(c, v);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n-- > 0) {
    c32 = HwCrc32b(c32, *p++);
  }
  return c32;
}

bool DetectSse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#else
#define RMP_HAVE_X86_CRC32C 0
#endif

}  // namespace

uint32_t Crc32Init() { return 0xffffffffu; }

uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> data) {
  return SliceBy8(IeeeTables(), crc, data.data(), data.size());
}

uint32_t Crc32Finalize(uint32_t crc) { return crc ^ 0xffffffffu; }

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data));
}

bool Crc32cHardwareAvailable() {
#if RMP_HAVE_X86_CRC32C
  static const bool available = DetectSse42();
  return available;
#else
  return false;
#endif
}

uint32_t Crc32c(std::span<const uint8_t> data) {
#if RMP_HAVE_X86_CRC32C
  if (Crc32cHardwareAvailable()) {
    return Crc32cHardware(0xffffffffu, data.data(), data.size()) ^ 0xffffffffu;
  }
#endif
  return SliceBy8(CastagnoliTables(), 0xffffffffu, data.data(), data.size()) ^ 0xffffffffu;
}

}  // namespace rmp
