// ADAPTIVE policy — the paper's §5 "Network load" future work, implemented:
//
//   "Such a situation could be handled by the RMP by measuring the time it
//    takes to satisfy a request and using a threshold to determine whether
//    it should continue to use the network to route pageout requests or it
//    would be better to switch to the local disk."
//
// AdaptiveBackend wraps a remote policy backend and a local DiskBackend. It
// keeps a moving average of recent remote per-request service times; when
// the average crosses `latency_threshold` (network congested), new pageouts
// route to the local disk. While on disk it periodically probes the network
// with a single pageout and switches back once latency recovers. Pageins
// always go wherever the page currently lives.

#ifndef SRC_CORE_ADAPTIVE_H_
#define SRC_CORE_ADAPTIVE_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/core/paging_backend.h"
#include "src/disk/disk_backend.h"

namespace rmp {

struct AdaptiveParams {
  // Remote per-request service time above which the disk wins. The paper's
  // disk costs ~17 ms/page, so congestion pushing remote past ~2x its idle
  // 11.24 ms makes the disk the better pageout target.
  DurationNs latency_threshold = Millis(22);
  // Moving-average window of recent remote request times.
  int window = 16;
  // While routed to disk, probe the network again this often.
  DurationNs reprobe_interval = Seconds(5);
};

class AdaptiveBackend final : public PagingBackend {
 public:
  AdaptiveBackend(std::unique_ptr<PagingBackend> remote, std::unique_ptr<DiskBackend> disk,
                  const AdaptiveParams& params = AdaptiveParams())
      : remote_(std::move(remote)), disk_(std::move(disk)), params_(params) {}

  Result<TimeNs> PageOut(TimeNs now, uint64_t page_id, std::span<const uint8_t> data) override;
  Result<TimeNs> PageIn(TimeNs now, uint64_t page_id, std::span<uint8_t> out) override;

  const BackendStats& stats() const override;
  std::string Name() const override { return "ADAPTIVE"; }

  bool using_network() const { return using_network_; }
  int64_t switches_to_disk() const { return switches_to_disk_; }
  int64_t switches_to_network() const { return switches_to_network_; }
  double recent_remote_latency_ms() const;

  PagingBackend& remote() { return *remote_; }
  DiskBackend& disk() { return *disk_; }

 private:
  void RecordSample(DurationNs service);
  bool AverageAboveThreshold() const;

  std::unique_ptr<PagingBackend> remote_;
  std::unique_ptr<DiskBackend> disk_;
  AdaptiveParams params_;

  // Where the current version of each page lives.
  std::unordered_map<uint64_t, bool> on_disk_;

  std::deque<DurationNs> samples_;
  bool using_network_ = true;
  TimeNs last_probe_ = 0;
  int64_t switches_to_disk_ = 0;
  int64_t switches_to_network_ = 0;
  mutable BackendStats merged_stats_;
};

}  // namespace rmp

#endif  // SRC_CORE_ADAPTIVE_H_
