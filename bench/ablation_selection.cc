// Ablation: server selection policy — "picks the most promising server"
// (§2.1, most free memory) vs plain round-robin — under *uneven* donations.
// With equal servers the two coincide; when donations are skewed,
// round-robin slams into the small servers' denials and migrates, while
// most-free fills proportionally.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/no_reliability.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"

namespace rmp {
namespace {

struct Rig {
  std::vector<std::unique_ptr<MemoryServer>> servers;
  std::unique_ptr<NoReliabilityBackend> backend;
};

Rig MakeRig(const std::vector<uint64_t>& capacities, ServerSelection selection) {
  Rig rig;
  Cluster cluster;
  for (size_t i = 0; i < capacities.size(); ++i) {
    MemoryServerParams params;
    params.name = "ws" + std::to_string(i);
    params.capacity_pages = capacities[i];
    rig.servers.push_back(std::make_unique<MemoryServer>(params));
    cluster.AddPeer(params.name, std::make_unique<InProcTransport>(rig.servers.back().get()));
  }
  auto fabric = std::make_shared<NetworkFabric>(PaperEthernet());
  RemotePagerParams pager_params;
  pager_params.selection = selection;
  pager_params.alloc_extent_pages = 64;
  rig.backend = std::make_unique<NoReliabilityBackend>(std::move(cluster), fabric, pager_params);
  return rig;
}

int Main() {
  std::printf("=== Ablation: server selection under uneven donations ===\n\n");
  const auto fft = MakeFft(24.0);
  // FFT at 24 MB pages ~1536 distinct pages out through 18 MB of frames.
  // Skewed donations sized just above that spill: 800/400/250/180 pages.
  const std::vector<uint64_t> skewed = {800, 400, 250, 180};
  std::printf("%-14s %10s %14s %30s\n", "selection", "FFT s", "denials", "pages per server");
  for (ServerSelection selection : {ServerSelection::kMostFree, ServerSelection::kRoundRobin}) {
    Rig rig = MakeRig(skewed, selection);
    RunConfig config;
    config.physical_frames = kPaperFrames;
    auto run = SimulateRun(*fft, rig.backend.get(), config);
    if (!run.ok()) {
      std::printf("%-14s FAILED: %s\n",
                  selection == ServerSelection::kMostFree ? "most-free" : "round-robin",
                  run.status().ToString().c_str());
      continue;
    }
    int64_t denials = 0;
    char distribution[128];
    int off = 0;
    for (const auto& server : rig.servers) {
      denials += server->stats().denials;
      off += std::snprintf(distribution + off, sizeof(distribution) - off, "%llu ",
                           (unsigned long long)server->live_pages());
    }
    std::printf("%-14s %10.2f %14lld %30s\n",
                selection == ServerSelection::kMostFree ? "most-free" : "round-robin",
                run->etime_s, static_cast<long long>(denials), distribution);
  }
  std::printf("\n(both end up filling every donation; most-free incurs somewhat fewer\n"
              " denials because it steers load away from the small hosts earlier —\n"
              " denials are cheap control messages, so completion time barely moves)\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
