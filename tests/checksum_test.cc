#include "src/util/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace rmp {
namespace {

std::span<const uint8_t> AsBytes(const std::string& s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xcbf43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t oneshot = Crc32(AsBytes(data));
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Init();
    crc = Crc32Update(crc, AsBytes(data.substr(0, split)));
    crc = Crc32Update(crc, AsBytes(data.substr(split)));
    EXPECT_EQ(Crc32Finalize(crc), oneshot) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(1024, 0xa5);
  const uint32_t clean = Crc32(std::span<const uint8_t>(data));
  for (size_t byte : {0u, 511u, 1023u}) {
    data[byte] ^= 0x10;
    EXPECT_NE(Crc32(std::span<const uint8_t>(data)), clean);
    data[byte] ^= 0x10;
  }
}

TEST(Crc32Test, DetectsTransposition) {
  std::vector<uint8_t> a = {1, 2, 3, 4};
  std::vector<uint8_t> b = {1, 3, 2, 4};
  EXPECT_NE(Crc32(std::span<const uint8_t>(a)), Crc32(std::span<const uint8_t>(b)));
}

}  // namespace
}  // namespace rmp
