#include "src/net/ethernet_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rmp {
namespace {

struct Station {
  int64_t queued_frames = 0;   // Backlog (ignored when saturated).
  int attempts = 0;            // Collisions suffered by the head-of-line frame.
  int64_t backoff_slots = 0;   // Idle slots to wait before retrying.
  TimeNs next_arrival = 0;     // Poisson mode only.
  StationStats stats;
};

}  // namespace

EthernetSimResult EthernetSimulator::RunSaturated(int stations, DurationNs duration,
                                                  uint64_t seed) const {
  return Run(stations, 0.0, /*saturated=*/true, duration, seed);
}

EthernetSimResult EthernetSimulator::RunPoisson(int stations, double offered_load,
                                                DurationNs duration, uint64_t seed) const {
  assert(offered_load >= 0.0);
  const double capacity_fps =
      params_.bandwidth_mbps * 1e6 / (static_cast<double>(params_.frame_bytes) * 8.0);
  const double per_station = offered_load * capacity_fps / static_cast<double>(stations);
  return Run(stations, per_station, /*saturated=*/false, duration, seed);
}

EthernetSimResult EthernetSimulator::Run(int stations, double per_station_arrival_rate_fps,
                                         bool saturated, DurationNs duration,
                                         uint64_t seed) const {
  assert(stations >= 1);
  Rng rng(seed);
  std::vector<Station> fleet(stations);

  const DurationNs frame_time = WireTime(params_.frame_bytes, params_.bandwidth_mbps);
  const double arrival_mean_ns =
      per_station_arrival_rate_fps > 0.0 ? static_cast<double>(kSecond) / per_station_arrival_rate_fps
                                         : 0.0;

  if (!saturated) {
    for (auto& st : fleet) {
      st.next_arrival = static_cast<TimeNs>(rng.Exponential(arrival_mean_ns));
    }
  }

  TimeNs now = 0;
  DurationNs good_time = 0;
  int64_t total_collisions = 0;

  std::vector<int> ready;
  ready.reserve(stations);

  while (now < duration) {
    if (!saturated) {
      // Deliver Poisson arrivals up to `now`.
      for (auto& st : fleet) {
        while (st.next_arrival <= now) {
          ++st.queued_frames;
          st.next_arrival += static_cast<TimeNs>(rng.Exponential(arrival_mean_ns)) + 1;
        }
      }
    }

    ready.clear();
    for (int i = 0; i < stations; ++i) {
      Station& st = fleet[i];
      const bool has_frame = saturated || st.queued_frames > 0;
      if (has_frame && st.backoff_slots == 0) {
        ready.push_back(i);
      }
    }

    if (ready.empty()) {
      // Idle slot: backoff counters tick down.
      for (auto& st : fleet) {
        const bool has_frame = saturated || st.queued_frames > 0;
        if (has_frame && st.backoff_slots > 0) {
          --st.backoff_slots;
        }
      }
      now += params_.slot_time;
      continue;
    }

    if (ready.size() == 1) {
      // Successful acquisition: the frame occupies the channel. Deferring
      // stations keep their backoff timers running (802.3 counts slots of
      // elapsed time, not idle time), so several may reach zero and collide
      // right after the channel frees.
      Station& st = fleet[ready[0]];
      ++st.stats.frames_delivered;
      st.attempts = 0;
      if (!saturated) {
        --st.queued_frames;
      }
      const int64_t busy_slots = frame_time / params_.slot_time + 1;
      for (auto& other : fleet) {
        if (&other != &st && other.backoff_slots > 0) {
          other.backoff_slots = std::max<int64_t>(0, other.backoff_slots - busy_slots);
        }
      }
      now += frame_time;
      good_time += frame_time;
      continue;
    }

    // Collision: every ready station jams, then draws a fresh backoff.
    for (int idx : ready) {
      Station& st = fleet[idx];
      ++st.stats.collisions;
      ++total_collisions;
      ++st.attempts;
      if (st.attempts >= params_.max_attempts) {
        ++st.stats.frames_dropped;
        st.attempts = 0;
        if (!saturated) {
          --st.queued_frames;
        }
      }
      const int exponent = std::min(st.attempts, params_.max_backoff_exponent);
      st.backoff_slots = static_cast<int64_t>(rng.Below(1ULL << exponent));
    }
    now += params_.slot_time;  // The collision consumes one slot (jam).
  }

  EthernetSimResult result;
  result.simulated_time = now;
  result.total_collisions = total_collisions;
  const double seconds = ToSeconds(now);
  const double frame_bits = static_cast<double>(params_.frame_bytes) * 8.0;
  for (auto& st : fleet) {
    st.stats.goodput_mbps =
        seconds > 0.0 ? static_cast<double>(st.stats.frames_delivered) * frame_bits / seconds / 1e6
                      : 0.0;
    result.total_frames_delivered += st.stats.frames_delivered;
    result.stations.push_back(st.stats);
  }
  result.total_throughput_mbps =
      seconds > 0.0
          ? static_cast<double>(result.total_frames_delivered) * frame_bits / seconds / 1e6
          : 0.0;
  result.channel_efficiency =
      now > 0 ? static_cast<double>(good_time) / static_cast<double>(now) : 0.0;
  return result;
}

}  // namespace rmp
