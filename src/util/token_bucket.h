// Deterministic token bucket in whole pages.
//
// Fractional accrual is tracked in token-billionths (rate * elapsed-ns), so
// pacing is exact integer math and runs are bit-reproducible. Originally the
// repair coordinator's pacing engine (DESIGN.md §11); hoisted here so the
// per-tenant request-rate quotas in MemoryServer (DESIGN.md §15) reuse the
// same arithmetic instead of growing a second, subtly different limiter.
//
// Not thread-safe: callers serialize access (the repair coordinator runs on
// the simulation loop; the server guards its tenant buckets with a mutex).

#ifndef SRC_UTIL_TOKEN_BUCKET_H_
#define SRC_UTIL_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/util/units.h"

namespace rmp {

class TokenBucket {
 public:
  // rate_pages_per_sec == 0 disables pacing: every grant is unlimited.
  // burst_pages is clamped to at least 1 so a configured-but-tiny bucket can
  // always eventually grant a token.
  TokenBucket(uint64_t rate_pages_per_sec, uint64_t burst_pages);

  // Grants up to `want` tokens available at `now` (0 when the bucket is dry).
  uint64_t TakeUpTo(uint64_t want, TimeNs now);

  // Returns unused grant.
  void Refund(uint64_t tokens);

  // Earliest time at or after `now` when at least one token is available.
  TimeNs NextAvailable(TimeNs now);

  // Tokens on hand after refilling to `now`. UINT64_MAX when unpaced —
  // admission thresholds (tenant priority lanes) compare against this.
  uint64_t Available(TimeNs now);

  uint64_t rate() const { return rate_; }
  uint64_t burst() const { return burst_; }

 private:
  void Refill(TimeNs now);

  uint64_t rate_;
  uint64_t burst_;
  uint64_t tokens_;
  uint64_t frac_ = 0;  // Accrued token-billionths, < kSecond.
  TimeNs last_ = 0;
};

}  // namespace rmp

#endif  // SRC_UTIL_TOKEN_BUCKET_H_
