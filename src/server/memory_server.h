// The user-level remote memory server (paper §3.2).
//
// "The server is a user level program listening to a socket... When the
// client requests a pagein, the server transfers the requested page(s)...
// When the client requests a pageout, the server reads the incoming pages
// and stores them in its main memory. The server is also responsible for
// swap space allocation and for providing periodically information to the
// client concerning the memory load of its host."
//
// A parity server is *the same program*: "it just performs pageins and
// pageouts... without knowing whether it stores memory pages or parity
// pages" — so there is deliberately no parity-specific code here.
//
// Storage layout: the page store is lock-striped into N shards keyed by a
// multiplicative slot hash, so concurrent sessions (and the TcpServer worker
// pool) contend only when they touch the same shard. Each shard stores pages
// in slab-allocated frames (kSlabPages per slab) recycled through a free
// list, instead of one heap PageBuffer per page. Allocation bookkeeping
// (slot runs, capacity, native load) lives under a separate control mutex;
// lock order is control → shard → disk-spill. DESIGN.md §9 discusses the
// choices.
//
// Two-tier cold store (DESIGN.md §14): when StoreTierParams::hot_page_limit
// is set, each shard runs a second-chance CLOCK over its uncompressed slab
// frames. Pages the clock hand finds cold are demoted — content-hash
// deduplicated against the shard's refcounted Crc32c index, then compressed
// (LZ4-class, src/util/compress.h) into variable-size extents that can spill
// to a file-backed DiskStore; all-zero pages are elided entirely. Cold loads
// decompress on the way out and promote back to a slab frame after a few
// hits. The wire protocol and every reliability policy see exactly the same
// byte-in/byte-out contract; only the physical representation changes.
//
// Fault and load injection used by the experiments:
//   Crash()          — drops every stored page (workstation crash, §2.2).
//   SetNativeLoad()  — native processes claim memory; the server shrinks its
//                      donated pool and starts advising the client to stop
//                      sending pages (§2.1).

#ifndef SRC_SERVER_MEMORY_SERVER_H_
#define SRC_SERVER_MEMORY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_store.h"
#include "src/proto/cluster_map.h"
#include "src/transport/transport.h"
#include "src/util/bytes.h"
#include "src/util/config.h"
#include "src/util/events.h"
#include "src/util/metrics.h"
#include "src/util/status.h"
#include "src/util/token_bucket.h"
#include "src/util/tracing.h"

namespace rmp {

// The compressed + deduplicated cold tier. Disabled by default
// (hot_page_limit == 0): every page then lives in an uncompressed slab
// frame, byte-for-byte the pre-tier server.
struct StoreTierParams {
  // Uncompressed resident pages the server keeps hot (split evenly across
  // shards) before the CLOCK hand starts demoting. 0 disables the tier.
  uint64_t hot_page_limit = 0;
  // Demoted pages go through the LZ4-class codec; pages that do not shrink
  // are stored raw in the extents. Also enables zero-page elision.
  bool compress = true;
  // Content-hash dedup across slots: a demoted page whose bytes already sit
  // in the shard's cold index just takes a reference.
  bool dedup = true;
  // Cold pageins promote back to a hot frame after this many accesses;
  // 0 = serve cold forever (benches use it to hold the cold-path cost).
  uint32_t promote_after_hits = 2;
  // In-memory budget for live cold-extent bytes (split across shards); once
  // exceeded, sealed extents spill to the DiskStore. 0 = never spill.
  uint64_t cold_budget_bytes = 0;
  // Size (in kPageSize blocks) of the file-backed spill store; 0 = no spill
  // backing, cold extents stay in memory regardless of budget.
  uint64_t spill_blocks = 0;
  // Admit up to overcommit × capacity logical pages; compression and dedup
  // are what make the extra logical pages physically affordable. 1.0
  // reproduces the paper's accounting exactly.
  double logical_overcommit = 1.0;
};

// One tenant's server-side quota row (DESIGN.md §15). Quotas are enforced per
// server: a tenant paging against N servers gets N × its row, matching how
// the paper's per-server ADVISE_STOP already scales.
struct TenantQuota {
  uint16_t id = 0;                  // 1..kMaxTenantId; 0 is never quota'd.
  uint64_t memory_quota_pages = 0;  // Occupancy cap; 0 = unlimited.
  uint64_t rate_pages_per_sec = 0;  // Request-rate token bucket; 0 = unlimited.
  uint64_t burst_pages = 64;        // Bucket depth (and the priority headroom unit).
  // Per-tenant ADVISE_STOP threshold, as a fraction of memory_quota_pages
  // (meaningful only when the quota is set).
  double advise_stop_fraction = 0.9;
};

// The server's whole tenant policy. Empty (the default) disables every
// tenant code path: requests are handled exactly as the untenanted server
// did, whatever their tenant field says.
struct TenantPolicyParams {
  std::vector<TenantQuota> tenants;
  // Reject ops from nonzero tenant ids that have no quota row. Off by
  // default: unknown tenants are admitted unlimited but still attributed
  // (their metrics accrue under their own id, never another tenant's).
  bool strict = false;

  bool enabled() const { return !tenants.empty() || strict; }
};

// Applies the `tenant.*` Config keys (README: tenant knobs) over `params`:
// tenant.strict plus, per declared id, tenant.<id>.quota_pages,
// tenant.<id>.rate, tenant.<id>.burst, tenant.<id>.advise_fraction.
Status ApplyTenantConfig(const Config& config, TenantPolicyParams* params);

struct MemoryServerParams {
  std::string name = "server";
  uint64_t capacity_pages = 4096;  // Donated main memory (32 MB by default).
  // When the live page count exceeds this fraction of the (current)
  // capacity, acks start carrying ADVISE_STOP.
  double advise_stop_fraction = 0.95;
  // Lock stripes in the page store. 1 reproduces the old single-mutex server
  // (the bench baseline); values are rounded up to a power of two.
  uint32_t store_shards = 16;
  // Modeled per-page service time (µs) spent while holding the slot's shard
  // lock; 0 disables it. Benches use this to expose lock-granularity
  // serialization on hosts with fewer cores than worker threads: a sleeping
  // thread yields the CPU, so striped shards overlap service the way
  // multi-core memcpys would, while a single mutex serializes it.
  int64_t store_service_micros = 0;
  StoreTierParams tier;
  // Multi-tenant quotas + admission control (DESIGN.md §15). Disabled when
  // empty: the server then behaves byte-identically to the untenanted seed.
  TenantPolicyParams tenants;
  // Server-side observability (DESIGN.md §17): capacity of the per-server
  // span ring traced requests append to (0 disables it), and the flight
  // recorder's journal options.
  size_t span_ring_capacity = 4096;
  EventJournalOptions events;
};

// Applies the `store.*` Config keys (README: store tuning knobs) over
// whatever `params` already holds: store.shards, store.service_micros,
// store.hot_pages, store.compress, store.dedup, store.promote_hits,
// store.cold_budget_kb, store.spill_blocks, store.overcommit.
Status ApplyStoreConfig(const Config& config, MemoryServerParams* params);

// The server's counters, backed by its MetricsRegistry (DESIGN.md §12): each
// member is a registry Counter, so the same numbers the direct accessors see
// ship in a STATS reply. Counters stay atomic, so shard-parallel request
// threads bump them without sharing a lock; read them with the implicit load.
struct MemoryServerStats {
  explicit MemoryServerStats(MetricsRegistry* registry)
      : pageouts_served(*registry->GetCounter("server.pageouts_served")),
        pageins_served(*registry->GetCounter("server.pageins_served")),
        batch_requests(*registry->GetCounter("server.batch_requests")),
        allocations(*registry->GetCounter("server.allocations")),
        denials(*registry->GetCounter("server.denials")),
        heartbeats_served(*registry->GetCounter("server.heartbeats_served")),
        migrations_served(*registry->GetCounter("server.migrations_served")),
        stale_epoch_rejections(*registry->GetCounter("server.stale_epoch_rejections")),
        map_publishes(*registry->GetCounter("server.map_publishes")),
        bytes_stored(*registry->GetCounter("server.bytes_stored")),
        bytes_returned(*registry->GetCounter("server.bytes_returned")),
        demotions(*registry->GetCounter("server.tier_demotions")),
        promotions(*registry->GetCounter("server.tier_promotions")),
        dedup_hits(*registry->GetCounter("server.dedup_hits")),
        zero_elisions(*registry->GetCounter("server.zero_elisions")),
        incompressible(*registry->GetCounter("server.incompressible_pages")),
        spills(*registry->GetCounter("server.extent_spills")),
        unspills(*registry->GetCounter("server.extent_unspills")),
        cold_source_bytes(*registry->GetCounter("server.cold_source_bytes")),
        cold_stored_bytes(*registry->GetCounter("server.cold_stored_bytes")),
        compress_us(*registry->GetHistogram("server.compress_us",
                                            {.lo = 0.1, .hi = 1e5, .buckets = 40,
                                             .log_scale = true})),
        decompress_us(*registry->GetHistogram("server.decompress_us",
                                              {.lo = 0.1, .hi = 1e5, .buckets = 40,
                                               .log_scale = true})) {}

  Counter& pageouts_served;
  Counter& pageins_served;
  Counter& batch_requests;  // PAGEOUT_BATCH / PAGEIN_BATCH messages.
  Counter& allocations;
  Counter& denials;
  Counter& heartbeats_served;
  Counter& migrations_served;  // MIGRATE (read-and-free) ops.
  Counter& stale_epoch_rejections;  // Data ops denied for an old map epoch (§16).
  Counter& map_publishes;           // MAP_PUBLISH frames accepted.
  Counter& bytes_stored;
  Counter& bytes_returned;
  // Cold-tier lifecycle (DESIGN.md §14).
  Counter& demotions;          // Hot frames packed into the cold tier.
  Counter& promotions;         // Cold pages pulled back to hot frames.
  Counter& dedup_hits;         // Demotions resolved by an existing entry.
  Counter& zero_elisions;      // Stores elided because the page was zero.
  Counter& incompressible;     // Demoted pages stored raw (codec did not win).
  Counter& spills;             // Extents written to the spill DiskStore.
  Counter& unspills;           // Extents read back on access.
  Counter& cold_source_bytes;  // Logical bytes entering the cold tier.
  Counter& cold_stored_bytes;  // Physical bytes those became in extents.
  HistogramMetric& compress_us;    // Codec latency per demoted page.
  HistogramMetric& decompress_us;  // Codec latency per cold pagein.
};

// Point-in-time tier occupancy, aggregated across shards. logical_bytes is
// what the clients believe is stored (every live slot at page size);
// physical_bytes is what the server actually holds in memory for them (hot
// frames plus live in-memory extent bytes). Their ratio is the effective
// capacity multiplier the compressed tier buys.
struct TierOccupancy {
  uint64_t hot_pages = 0;
  uint64_t cold_pages = 0;  // Slots whose content lives in the cold tier.
  uint64_t zero_pages = 0;  // Slots elided as all-zero.
  uint64_t unique_cold_entries = 0;
  uint64_t cold_physical_bytes = 0;  // Live cold bytes resident in memory.
  uint64_t spilled_bytes = 0;        // Live cold bytes currently on disk.
  uint64_t logical_bytes = 0;
  uint64_t physical_bytes = 0;
};

class MemoryServer : public MessageHandler {
 public:
  explicit MemoryServer(const MemoryServerParams& params = MemoryServerParams());

  // MessageHandler: dispatches the wire protocol. Thread-safe.
  Message Handle(const Message& request) override;

  // Direct API (same semantics as the wire protocol; used by tests and by
  // the recovery manager, which reads surviving servers' pages). The tenant
  // overloads charge occupancy to a quota row; tenant 0 is the legacy lane
  // (unquota'd, may touch any slot) so the untenanted callers keep working.
  Result<uint64_t> Allocate(uint64_t pages) { return Allocate(pages, 0); }
  Result<uint64_t> Allocate(uint64_t pages, uint16_t tenant);  // First slot of a fresh run.
  Status Free(uint64_t first_slot, uint64_t pages) { return Free(first_slot, pages, 0); }
  Status Free(uint64_t first_slot, uint64_t pages, uint16_t tenant);
  Status Store(uint64_t slot, std::span<const uint8_t> page);
  Result<PageBuffer> Load(uint64_t slot) const;

  // Vectored forms. StoreBatch writes slots.size() pages (`pages` is their
  // concatenation), stopping at the first failure; *stored_out is the count
  // stored, which on error is also the failing index. LoadBatch appends
  // kPageSize bytes per slot to *out in request order, stopping at the first
  // failure (pages already appended stay in *out).
  Status StoreBatch(std::span<const uint64_t> slots, std::span<const uint8_t> pages,
                    uint64_t* stored_out);
  Status LoadBatch(std::span<const uint64_t> slots, std::vector<uint8_t>* out) const;

  // MIGRATE: returns the page at `slot` and frees the slot in one operation
  // (the read half of the §2.1 drain path, one round trip on the wire).
  Result<PageBuffer> MigrateOut(uint64_t slot) { return MigrateOut(slot, 0); }
  Result<PageBuffer> MigrateOut(uint64_t slot, uint16_t tenant);

  // Basic-parity primitives (§2.2 "Parity"): the data server computes
  // old XOR new while storing, the parity server folds a delta into the
  // stored page. An absent slot reads as all-zeroes for both.
  Result<PageBuffer> DeltaStore(uint64_t slot, std::span<const uint8_t> page);
  Status XorMerge(uint64_t slot, std::span<const uint8_t> delta);

  bool Holds(uint64_t slot) const;

  // All live slots, sorted (recovery enumerates a crashed server's peers).
  std::vector<uint64_t> LiveSlots() const;

  // Fault / load injection.
  void Crash();
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  void Restart();  // Clears the crashed flag; storage stays empty.
  // Bumped on every Restart(). Heartbeat acks carry it so a client can tell
  // a rebooted-empty server (incarnation changed: its pages are gone, trigger
  // a rebuild) from a healed network partition (incarnation unchanged: the
  // pages survived, re-admission is enough). See DESIGN.md §11.
  uint64_t incarnation() const { return incarnation_.load(std::memory_order_acquire); }
  // Zeroes every counter in stats(). A restarted workstation starts from a
  // clean slate, so post-recovery assertions (pageouts_served, denials, ...)
  // must not see the pre-crash totals; Testbed::RestartServer calls this.
  void ResetStats();
  // `fraction` of the donated memory reclaimed by native processes on the
  // server workstation. Raising it can push the server into ADVISE_STOP.
  void SetNativeLoad(double fraction);

  // Test hook: requests touching `slot` sleep for `micros` before being
  // served (outside any server lock, so other slots proceed). Lets tests
  // force out-of-order replies from a multi-worker TcpServer session.
  void SetSlotDelayForTest(uint64_t slot, int64_t micros);

  uint64_t capacity_pages() const;
  uint64_t free_pages() const;
  uint64_t live_pages() const;
  bool ShouldAdviseStop() const;

  // --- Tenant introspection (DESIGN.md §15) -------------------------------
  bool tenant_enforced() const { return tenant_enforced_; }
  // Occupancy currently charged to `tenant` (0 for unknown ids).
  uint64_t TenantReservedPages(uint16_t tenant) const;
  // True when the tenant is past its own advise_stop_fraction of its quota;
  // pageout acks for that tenant carry ADVISE_STOP even when the server as a
  // whole has room (per-tenant backpressure).
  bool TenantShouldAdviseStop(uint16_t tenant) const;

  // --- Tier occupancy (DESIGN.md §14) -------------------------------------
  // Logical vs physical occupancy; capacity claims are judged on the ratio.
  TierOccupancy tier_occupancy() const;
  uint64_t logical_bytes() const { return tier_occupancy().logical_bytes; }
  uint64_t physical_bytes() const { return tier_occupancy().physical_bytes; }

  // --- Elastic membership (DESIGN.md §16) ---------------------------------
  // The cluster-map epoch currently in force; 0 = no map adopted. Data ops
  // stamped with an older epoch (request.aux) are denied with STALE_EPOCH so
  // a stale client refreshes before it writes to the wrong owner.
  uint64_t map_epoch() const { return map_epoch_.load(std::memory_order_acquire); }
  // The serialized map last accepted over MAP_PUBLISH (empty when none).
  std::vector<uint8_t> map_bytes() const;

  uint32_t shard_count() const { return shard_count_; }
  const MemoryServerStats& stats() const { return stats_; }
  const std::string& name() const { return params_.name; }
  bool tier_enabled() const { return params_.tier.hot_page_limit > 0; }

  // --- Live introspection (DESIGN.md §12) ---------------------------------
  // The registry behind stats(), plus occupancy gauges refreshed on demand.
  MetricsRegistry& metrics() const { return registry_; }
  // Refreshes the occupancy gauges and exports the registry as JSON — the
  // STATS reply payload.
  std::string StatsJson() const;
  // Optional tracer whose ring answers TRACE_DUMP (a server-side process
  // would trace its own ops; the testbed attaches the client's tracer so the
  // dump travels the wire). Not owned; pass nullptr to detach.
  void AttachTracer(PageTracer* tracer) { tracer_ = tracer; }

  // --- Distributed tracing + flight recorder (DESIGN.md §17) --------------
  // Server-side spans recorded for requests that carried a wire trace id;
  // answers TRACE_DUMP with document 1 and the Testbed's in-proc stitching.
  SpanRing& span_ring() const { return spans_; }
  // The server's flight recorder; answers EVENTS_QUERY. State machines that
  // live *outside* the server (health, repair, fault plans) get their own
  // journals — this one records the server's own decisions.
  EventJournal& events() const { return events_; }

 private:
  // Frames per slab: 64 × 8 KB = 512 KB slabs, large enough to amortize the
  // allocation, small enough that a lightly used shard stays cheap.
  static constexpr uint32_t kSlabPages = 64;
  // Cold extents pack compressed blobs into 256 KB arenas — the spill unit.
  static constexpr uint32_t kExtentBytes = 256 * 1024;
  static constexpr uint32_t kNoIndex = 0xffffffffu;

  // One deduplicated cold payload; slots reference it by index.
  struct ColdEntry {
    uint32_t crc = 0;     // Crc32c of the uncompressed page (dedup key, and
                          // an integrity check on every cold read).
    uint32_t bytes = 0;   // Stored length inside the extent.
    uint32_t extent = 0;
    uint32_t offset = 0;
    uint32_t refs = 0;
    bool compressed = false;  // false: raw (the codec did not win).
  };

  // A packed arena of cold payloads. Append-only while open; sealed when
  // full. Freed bytes accrue as `dead`; a fully dead extent releases its
  // memory (and its disk run, if spilled). disk_blocks > 0 means the bytes
  // currently live in the spill DiskStore instead of `data`.
  struct Extent {
    std::unique_ptr<uint8_t[]> data;
    uint32_t capacity = 0;
    uint32_t used = 0;
    uint32_t dead = 0;
    bool sealed = false;
    uint64_t disk_block = 0;
    uint64_t disk_blocks = 0;
    bool spilled() const { return disk_blocks > 0; }
  };

  struct SlotRef {
    enum class Tier : uint8_t { kHot, kCold, kZero };
    Tier tier = Tier::kHot;
    // Hot: the CLOCK referenced bit. Cold: promotion hit count (saturating).
    uint8_t clock = 0;
    // Hot: frame index (slab = ref / kSlabPages). Cold: ColdEntry index.
    uint32_t ref = 0;
    // Matches the clock-ring entry pushed when this slot last became hot;
    // stale ring entries (slot freed, demoted, or re-stored since) fail the
    // epoch check and are discarded instead of double-cycling.
    uint32_t ring_epoch = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, SlotRef> pages;
    std::vector<std::unique_ptr<uint8_t[]>> slabs;
    std::vector<uint32_t> free_frames;
    // --- Cold tier ---
    // Second-chance order over hot slots; entries are (slot, ring_epoch).
    std::deque<std::pair<uint64_t, uint32_t>> clock_ring;
    uint32_t next_ring_epoch = 0;
    uint64_t hot_count = 0;
    std::vector<ColdEntry> cold_entries;
    std::vector<uint32_t> cold_free;
    std::unordered_multimap<uint32_t, uint32_t> dedup;  // crc → entry index.
    std::vector<Extent> extents;
    std::vector<uint32_t> extent_free;
    uint32_t open_extent = kNoIndex;
    uint64_t cold_live_bytes = 0;  // Live bytes in *in-memory* extents.
  };

  Shard& ShardFor(uint64_t slot) const;
  static uint8_t* FramePtr(const Shard& shard, uint32_t frame);
  // Pops a free frame, growing the slab list if needed. Shard mutex held.
  static uint32_t TakeFrameLocked(Shard* shard);

  // --- Cold-tier internals (shard mutex held throughout) ------------------
  void MakeHotLocked(Shard* shard, uint64_t slot, SlotRef* ref, uint32_t frame) const;
  void ReleaseStorageLocked(Shard* shard, SlotRef* ref) const;
  void ReleaseColdRefLocked(Shard* shard, uint32_t entry_index) const;
  void ReleaseExtentLocked(Shard* shard, uint32_t extent_index) const;
  // Runs the CLOCK hand until the shard is back under its hot limit (or the
  // pass bound is hit); demotes un-referenced pages.
  void MaybeDemoteLocked(Shard* shard) const;
  void DemoteLocked(Shard* shard, SlotRef* ref) const;
  // Appends `bytes` to the open extent (sealing/opening as needed).
  void AppendColdLocked(Shard* shard, const uint8_t* bytes, uint32_t len, uint32_t* extent_out,
                        uint32_t* offset_out) const;
  // Byte-exact dedup verify of `page` against an existing entry.
  bool ColdEntryMatchesLocked(Shard* shard, const ColdEntry& entry, const uint8_t* page) const;
  // Reads entry bytes (unspilling its extent first if needed), decompresses,
  // and CRC-verifies into `out` (kPageSize bytes).
  Status ReadColdLocked(Shard* shard, uint32_t entry_index, uint8_t* out) const;
  Status UnspillExtentLocked(Shard* shard, uint32_t extent_index) const;
  void MaybeSpillLocked(Shard* shard) const;
  // Promotes a cold slot back into a hot frame holding `page` bytes.
  void PromoteLocked(Shard* shard, uint64_t slot, SlotRef* ref, const uint8_t* page) const;
  // Ensures the slot's bytes sit in a hot frame (for read-modify-write ops);
  // returns the frame index. The slot must exist.
  Result<uint32_t> MaterializeHotLocked(Shard* shard, uint64_t slot, SlotRef* ref) const;

  uint64_t EffectiveCapacityLocked() const;
  uint64_t FreePagesLocked() const;
  bool AdviseStopLocked() const;

  // --- Tenant admission (DESIGN.md §15) -----------------------------------
  // Per-tenant quota state. Guarded by tenant_mutex_ (lock order:
  // control_mutex_ → tenant_mutex_; the data path takes tenant_mutex_ alone).
  struct TenantState {
    TenantQuota quota;
    uint64_t reserved = 0;  // Occupancy charged at Allocate, credited at Free.
    TokenBucket bucket{0, 1};
    Counter* ops = nullptr;           // Requests admitted.
    Counter* denials = nullptr;       // Occupancy / ownership denials.
    Counter* rate_denials = nullptr;  // Token-bucket rejections.
    Gauge* reserved_gauge = nullptr;
    HistogramMetric* service_us = nullptr;
  };

  // Finds (or, when !strict, lazily creates) the state row for a nonzero
  // tenant. Returns nullptr for unknown ids under strict policy.
  TenantState* TenantStateLocked(uint16_t tenant) const;
  void BindTenantMetricsLocked(uint16_t tenant, TenantState* state) const;
  // Credits quota rows and splits/erases ownership runs for a freed range.
  // control_mutex_ held.
  void ReleaseTenantRunsLocked(uint64_t first_slot, uint64_t pages);
  // The untenanted dispatch switch; Handle wraps it with tenant admission.
  Message HandleInternal(const Message& request);
  // Tenant admission + dispatch (the whole pre-§17 Handle). Handle itself is
  // now only the trace shim: untraced requests fall straight through here.
  Message HandleAdmitted(const Message& request);
  // Rate-limit + attribution gate run before dispatch. Returns false and
  // fills *denial when the op must be rejected; on admit, *service_us_out
  // points at the tenant's latency histogram (null for tenant 0).
  bool AdmitTenant(const Message& request, Message* denial,
                   HistogramMetric** service_us_out);
  // Ownership check for data ops: a nonzero tenant may only touch slots in
  // runs it allocated. Tenant 0 (legacy/recovery) may touch everything.
  Status CheckSlotOwner(uint64_t slot, uint16_t tenant) const;

  MemoryServerParams params_;
  uint32_t shard_count_ = 1;
  uint32_t shard_bits_ = 0;
  uint64_t per_shard_hot_limit_ = 0;    // 0 = tier disabled.
  uint64_t per_shard_cold_budget_ = 0;  // 0 = never spill.
  std::unique_ptr<Shard[]> shards_;

  // Spill backing, shared by all shards. Lock order: shard → disk_mutex_.
  mutable std::mutex disk_mutex_;
  mutable std::unique_ptr<DiskStore> disk_;

  // Allocation bookkeeping; taken before any shard mutex, never after.
  mutable std::mutex control_mutex_;
  uint64_t reserved_slots_ = 0;  // Allocated (granted) but possibly unwritten.
  std::vector<std::pair<uint64_t, uint64_t>> free_runs_;
  // Slot-run ownership when tenants are enforced: start → (pages, tenant).
  // Lets Free/MIGRATE credit the right quota and reject cross-tenant frees.
  std::map<uint64_t, std::pair<uint64_t, uint16_t>> tenant_runs_;
  double native_load_ = 0.0;
  std::unordered_map<uint64_t, int64_t> slot_delays_micros_;

  // Read lock-free on the data path; written under control_mutex_.
  std::atomic<uint64_t> next_slot_{0};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> has_slot_delays_{false};
  std::atomic<uint64_t> incarnation_{1};

  // Elastic membership (DESIGN.md §16): the last adopted cluster map. The
  // epoch is read lock-free on every data op (the stale gate); the serialized
  // bytes sit under map_mutex_ and only matter on MAP_QUERY/MAP_PUBLISH.
  mutable std::mutex map_mutex_;
  std::vector<uint8_t> map_bytes_;
  std::atomic<uint64_t> map_epoch_{0};

  // Tenant quota rows; populated from params_.tenants at construction and
  // lazily for attributed-but-unquota'd ids. tenant_enforced_ is immutable
  // after construction, so the data path branches on it lock-free.
  bool tenant_enforced_ = false;
  mutable std::mutex tenant_mutex_;
  mutable std::unordered_map<uint16_t, TenantState> tenant_states_;

  // Declared before stats_: the stat counters live in this registry.
  mutable MetricsRegistry registry_;
  mutable MemoryServerStats stats_{&registry_};
  PageTracer* tracer_ = nullptr;
  mutable SpanRing spans_;
  mutable EventJournal events_;
};

}  // namespace rmp

#endif  // SRC_SERVER_MEMORY_SERVER_H_
