// CRC32 (IEEE 802.3 polynomial) used to guard page payloads on the wire and
// to verify reconstructed pages after recovery.
//
// Crc32 runs on every 8 KB page payload the transport sends or receives, so
// it is hot-path code: the implementation is slice-by-8 (eight table lookups
// per 8 input bytes) rather than the classic byte-at-a-time loop.
//
// Crc32c is the Castagnoli variant backed by the SSE4.2 `crc32q` instruction
// when the CPU has it (runtime-dispatched, software slice-by-8 otherwise).
// The two polynomials are NOT interchangeable: the wire format is pinned to
// IEEE 802.3, which `crc32q` cannot compute, so Crc32c is offered for new
// in-memory integrity checks where hardware speed matters more than wire
// compatibility.

#ifndef SRC_UTIL_CHECKSUM_H_
#define SRC_UTIL_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace rmp {

// One-shot CRC32 of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: crc = Crc32Update(crc, chunk) starting from Crc32Init().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, std::span<const uint8_t> data);
uint32_t Crc32Finalize(uint32_t crc);

// One-shot CRC-32C (Castagnoli polynomial 0x1EDC6F41). Uses the SSE4.2
// crc32 instructions when available.
uint32_t Crc32c(std::span<const uint8_t> data);

// True when Crc32c dispatches to the hardware instruction on this machine.
bool Crc32cHardwareAvailable();

}  // namespace rmp

#endif  // SRC_UTIL_CHECKSUM_H_
