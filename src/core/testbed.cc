#include "src/core/testbed.h"

#include <algorithm>
#include <cstdio>

#include "src/util/slo.h"
#include "src/util/tracing.h"

namespace rmp {

std::string_view PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kNoReliability:
      return "NO_RELIABILITY";
    case Policy::kMirroring:
      return "MIRRORING";
    case Policy::kBasicParity:
      return "BASIC_PARITY";
    case Policy::kParityLogging:
      return "PARITY_LOGGING";
    case Policy::kWriteThrough:
      return "WRITE_THROUGH";
    case Policy::kDisk:
      return "DISK";
  }
  return "UNKNOWN";
}

Result<std::unique_ptr<Testbed>> Testbed::Create(const TestbedParams& params) {
  if (params.data_servers < 1 && params.policy != Policy::kDisk) {
    return InvalidArgumentError("need at least one data server");
  }
  auto testbed = std::unique_ptr<Testbed>(new Testbed(params));

  if (params.policy == Policy::kDisk) {
    auto disk = DiskBackend::Create(params.disk, params.disk_blocks);
    if (!disk.ok()) {
      return disk.status();
    }
    testbed->backend_ = std::make_unique<DiskBackend>(std::move(*disk));
    return testbed;
  }

  const bool has_parity =
      params.policy == Policy::kParityLogging || params.policy == Policy::kBasicParity;
  const int total_servers =
      params.data_servers + (has_parity ? 1 : 0) + (params.with_spare ? 1 : 0);

  Cluster cluster;
  for (int i = 0; i < total_servers; ++i) {
    testbed->AddServerTo(&cluster);
  }
  // A spare must not be selected by normal placement until recovery uses it.
  if (params.with_spare) {
    cluster.peer(static_cast<size_t>(total_servers) - 1).set_stopped(true);
  }

  auto fabric = params.network != nullptr ? std::make_shared<NetworkFabric>(params.network)
                                          : std::make_shared<NetworkFabric>();
  const size_t parity_peer = static_cast<size_t>(params.data_servers);

  switch (params.policy) {
    case Policy::kNoReliability: {
      std::unique_ptr<DiskBackend> fallback;
      if (params.no_reliability_disk_fallback) {
        auto disk = DiskBackend::Create(params.disk, params.disk_blocks);
        if (!disk.ok()) {
          return disk.status();
        }
        fallback = std::make_unique<DiskBackend>(std::move(*disk));
      }
      testbed->backend_ = std::make_unique<NoReliabilityBackend>(
          std::move(cluster), fabric, params.pager, std::move(fallback));
      break;
    }
    case Policy::kMirroring:
      testbed->backend_ =
          std::make_unique<MirroringBackend>(std::move(cluster), fabric, params.pager);
      break;
    case Policy::kBasicParity: {
      auto backend = std::make_unique<BasicParityBackend>(
          std::move(cluster), fabric, params.pager, parity_peer,
          static_cast<size_t>(params.data_servers));
      if (params.with_spare) {
        backend->SetSpare(static_cast<size_t>(total_servers) - 1);
      }
      testbed->backend_ = std::move(backend);
      break;
    }
    case Policy::kParityLogging:
      testbed->backend_ = std::make_unique<ParityLoggingBackend>(
          std::move(cluster), fabric, params.pager, parity_peer, params.parity_logging);
      break;
    case Policy::kWriteThrough: {
      auto disk = DiskBackend::Create(params.disk, params.disk_blocks);
      if (!disk.ok()) {
        return disk.status();
      }
      testbed->backend_ = std::make_unique<WriteThroughBackend>(
          std::move(cluster), fabric, params.pager,
          std::make_unique<DiskBackend>(std::move(*disk)));
      break;
    }
    case Policy::kDisk:
      return InternalError("unreachable");
  }
  return testbed;
}

void Testbed::AddServerTo(Cluster* cluster) {
  const size_t i = servers_.size();
  MemoryServerParams server_params;
  server_params.name = "server-" + std::to_string(i);
  server_params.capacity_pages = params_.server_capacity_pages;
  server_params.tier = params_.store_tier;
  server_params.tenants = params_.tenants;
  server_params.span_ring_capacity = params_.server_span_ring;
  server_params.events = params_.server_events;
  servers_.push_back(std::make_unique<MemoryServer>(server_params));
  auto transport = std::make_unique<InProcTransport>(servers_.back().get());
  transports_.push_back(transport.get());
  auto fault = std::make_unique<FaultInjectingTransport>(std::move(transport));
  fault->SetCrashHook([this, i] { CrashServer(i); });
  faults_.push_back(fault.get());
  cluster->AddPeer(server_params.name, std::move(fault));
  cluster->peer(cluster->size() - 1).set_tenant(params_.client_tenant);
}

Result<TimeNs> Testbed::Preload(uint64_t pages, uint64_t seed, TimeNs now) {
  std::vector<uint64_t> ids(kMaxBatchPages);
  std::vector<uint8_t> data(static_cast<size_t>(kMaxBatchPages) * kPageSize);
  uint64_t next_id = 0;
  while (next_id < pages) {
    const size_t n = static_cast<size_t>(std::min<uint64_t>(kMaxBatchPages, pages - next_id));
    for (size_t i = 0; i < n; ++i) {
      ids[i] = next_id + i;
      FillPattern(std::span<uint8_t>(data).subspan(i * kPageSize, kPageSize),
                  PreloadSeed(seed, ids[i]));
    }
    auto done = backend_->PageOutBatch(now, std::span<const uint64_t>(ids).first(n),
                                       std::span<const uint8_t>(data).first(n * kPageSize));
    if (!done.ok()) {
      return done;
    }
    now = *done;
    next_id += n;
  }
  return now;
}

void Testbed::InstallFaultPlan(size_t i, std::shared_ptr<FaultPlan> plan) {
  if (plan != nullptr) {
    if (EventJournal* journal = events()) {
      plan->AttachEvents(journal, "faults@" + servers_[i]->name());
    }
  }
  faults_[i]->InstallPlan(std::move(plan));
}

void Testbed::CrashServer(size_t i) {
  JournalClient(EventKind::kCrash, servers_[i]->name() + " crashed; transport severed");
  servers_[i]->Crash();
  transports_[i]->Disconnect();
  faults_[i]->Disconnect();
}

void Testbed::RestartServer(size_t i, RestartOptions opts) {
  if (!opts.preserve_memory) {
    servers_[i]->Restart();
    // A restarted workstation's counters start from zero; stale pre-crash
    // totals would poison post-recovery assertions.
    servers_[i]->ResetStats();
    JournalClient(EventKind::kRestart,
                  servers_[i]->name() + " restarted empty; incarnation=" +
                      std::to_string(servers_[i]->incarnation()));
  } else {
    JournalClient(EventKind::kRestart, servers_[i]->name() + " partition healed; pages intact");
  }
  transports_[i]->Reconnect();
  faults_[i]->Reconnect();
}

void Testbed::PartitionServer(size_t i) {
  JournalClient(EventKind::kInfo, servers_[i]->name() + " partitioned; transports severed");
  transports_[i]->Disconnect();
  faults_[i]->Disconnect();
}

std::string Testbed::DumpMetrics() {
  std::string out;
  if (auto* pager = dynamic_cast<RemotePagerBase*>(backend_.get())) {
    pager->SyncStatsToMetrics();
    out += "# client (" + std::string(PolicyName(params_.policy)) + ")\n";
    out += pager->metrics().ExportText();
  }
  for (auto& server : servers_) {
    out += "# " + server->name() + "\n";
    (void)server->StatsJson();  // Refreshes the occupancy gauges.
    out += server->metrics().ExportText();
  }
  out += "# process\n";
  out += MetricsRegistry::Global().ExportText();
  return out;
}

void Testbed::AttachTracerToServer(size_t i) {
  if (auto* pager = dynamic_cast<RemotePagerBase*>(backend_.get())) {
    servers_[i]->AttachTracer(&pager->tracer());
  }
}

size_t Testbed::StitchServerSpans() {
  auto* pager = remote_pager();
  if (pager == nullptr) {
    return 0;
  }
  size_t attached = 0;
  for (auto& server : servers_) {
    for (const ServerSpan& span : server->span_ring().Drain()) {
      pager->tracer().AttachServerSpan(span.trace_id, span.stage, span.start, span.duration);
      ++attached;
    }
  }
  return attached;
}

EventJournal* Testbed::events() {
  auto* pager = remote_pager();
  return pager != nullptr ? &pager->events() : nullptr;
}

void Testbed::JournalClient(EventKind kind, const std::string& detail) {
  if (EventJournal* journal = events()) {
    journal->Append(kind, "testbed", detail);
  }
}

std::string Testbed::DumpFlightRecorder() {
  // Every journal stamps the same process-monotonic clock (EventWallNanos),
  // so a plain sort by wall_ns is a true merged timeline.
  struct TimelineEntry {
    std::string source;
    Event event;
  };
  std::vector<TimelineEntry> entries;
  if (auto* pager = remote_pager()) {
    for (Event& e : pager->events().All()) {
      entries.push_back(TimelineEntry{"client", std::move(e)});
    }
  }
  for (auto& server : servers_) {
    for (Event& e : server->events().All()) {
      entries.push_back(TimelineEntry{server->name(), std::move(e)});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.event.wall_ns < b.event.wall_ns;
                   });
  std::string out = "=== flight recorder: " + std::to_string(entries.size()) +
                    " events across " + std::to_string(1 + servers_.size()) + " journals ===\n";
  if (entries.empty()) {
    return out;
  }
  const int64_t base = entries.front().event.wall_ns;
  char prefix[64];
  for (const TimelineEntry& entry : entries) {
    const Event& e = entry.event;
    std::snprintf(prefix, sizeof(prefix), "[+%10.6fs] %-9s %-11s ",
                  static_cast<double>(e.wall_ns - base) / 1e9, entry.source.c_str(),
                  std::string(EventKindName(e.kind)).c_str());
    out += prefix;
    out += e.actor + ": " + e.detail + "\n";
  }
  return out;
}

Status Testbed::EnableSelfHealing(const HealthParams& health_params,
                                  const RepairParams& repair_params) {
  auto* pager = dynamic_cast<RemotePagerBase*>(backend_.get());
  if (pager == nullptr) {
    return FailedPreconditionError("self-healing needs a remote-memory policy");
  }
  monitor_ = std::make_unique<HealthMonitor>(&pager->cluster(), health_params);
  repair_ = std::make_unique<RepairCoordinator>(pager, monitor_.get(), repair_params);
  // Both halves of the self-healing layer narrate onto the client journal.
  monitor_->AttachEvents(&pager->events());
  repair_->AttachEvents(&pager->events());
  return OkStatus();
}

Status Testbed::AdoptNextMap(RemotePagerBase* pager, std::vector<ClusterMember> members,
                             TimeNs* now) {
  const ClusterMap map = ClusterMap::Build(pager->cluster_map().epoch() + 1,
                                           pager->cluster_map().groups(), std::move(members));
  if (!pager->AdoptClusterMap(map, now)) {
    return InternalError("next cluster map rejected");
  }
  if (repair_ != nullptr) {
    repair_->NoteMapChange();
  }
  return OkStatus();
}

Status Testbed::EnableElasticMembership(const ElasticParams& elastic, TimeNs* now) {
  auto* pager = remote_pager();
  if (pager == nullptr) {
    return FailedPreconditionError("elastic membership needs a remote-memory policy");
  }
  if (pager->has_cluster_map()) {
    return FailedPreconditionError("elastic membership already enabled");
  }
  TimeNs local = 0;
  if (now == nullptr) {
    now = &local;
  }
  std::vector<ClusterMember> members;
  members.reserve(servers_.size());
  for (size_t i = 0; i < servers_.size(); ++i) {
    members.push_back(ClusterMember{static_cast<uint32_t>(i), servers_[i]->incarnation(),
                                    ClusterMember::State::kActive});
  }
  const ClusterMap map = ClusterMap::Build(1, elastic.page_groups, std::move(members));
  if (!pager->AdoptClusterMap(map, now)) {
    return InternalError("initial cluster map rejected");
  }
  if (repair_ != nullptr) {
    repair_->NoteMapChange();
  }
  return OkStatus();
}

Result<size_t> Testbed::JoinServer(TimeNs* now) {
  auto* pager = remote_pager();
  if (pager == nullptr || !pager->has_cluster_map()) {
    return FailedPreconditionError("enable elastic membership before joining servers");
  }
  TimeNs local = 0;
  if (now == nullptr) {
    now = &local;
  }
  AddServerTo(&pager->cluster());
  const size_t i = servers_.size() - 1;
  pager->NotePeerAdded(i);
  std::vector<ClusterMember> members = pager->cluster_map().members();
  members.push_back(ClusterMember{static_cast<uint32_t>(i), servers_[i]->incarnation(),
                                  ClusterMember::State::kActive});
  RMP_RETURN_IF_ERROR(AdoptNextMap(pager, std::move(members), now));
  JournalClient(EventKind::kMembership,
                servers_[i]->name() + " joined ACTIVE; map epoch=" +
                    std::to_string(pager->cluster_map().epoch()));
  return i;
}

Status Testbed::DecommissionServer(size_t i, TimeNs* now) {
  auto* pager = remote_pager();
  if (pager == nullptr || !pager->has_cluster_map()) {
    return FailedPreconditionError("enable elastic membership before decommissioning");
  }
  TimeNs local = 0;
  if (now == nullptr) {
    now = &local;
  }
  std::vector<ClusterMember> members = pager->cluster_map().members();
  size_t actives = 0;
  for (const ClusterMember& m : members) {
    actives += m.state == ClusterMember::State::kActive ? 1 : 0;
  }
  for (ClusterMember& m : members) {
    if (m.server_id != i) {
      continue;
    }
    if (m.state != ClusterMember::State::kActive) {
      return FailedPreconditionError("server is already leaving");
    }
    if (actives <= 1) {
      return FailedPreconditionError("cannot decommission the last active server");
    }
    m.state = ClusterMember::State::kLeaving;
    RMP_RETURN_IF_ERROR(AdoptNextMap(pager, std::move(members), now));
    JournalClient(EventKind::kMembership,
                  servers_[i]->name() + " marked LEAVING; map epoch=" +
                      std::to_string(pager->cluster_map().epoch()));
    return OkStatus();
  }
  return NotFoundError("server " + std::to_string(i) + " is not in the cluster map");
}

Status Testbed::CompleteDecommission(size_t i, TimeNs* now) {
  auto* pager = remote_pager();
  if (pager == nullptr || !pager->has_cluster_map()) {
    return FailedPreconditionError("enable elastic membership before decommissioning");
  }
  TimeNs local = 0;
  if (now == nullptr) {
    now = &local;
  }
  const uint64_t pages = pager->PagesOn(i);
  if (pages != 0) {
    return FailedPreconditionError("server still holds " + std::to_string(pages) +
                                   " pages; let the rebalance drain it first");
  }
  std::vector<ClusterMember> members = pager->cluster_map().members();
  bool found = false;
  std::vector<ClusterMember> rest;
  rest.reserve(members.size());
  for (const ClusterMember& m : members) {
    if (m.server_id == i) {
      found = true;
      continue;
    }
    rest.push_back(m);
  }
  if (!found) {
    return NotFoundError("server " + std::to_string(i) + " is not in the cluster map");
  }
  size_t actives = 0;
  for (const ClusterMember& m : rest) {
    actives += m.state == ClusterMember::State::kActive ? 1 : 0;
  }
  if (rest.empty() || actives == 0) {
    return FailedPreconditionError("cannot drop the last active server from the map");
  }
  RMP_RETURN_IF_ERROR(AdoptNextMap(pager, std::move(rest), now));
  JournalClient(EventKind::kMembership,
                servers_[i]->name() + " dropped from map; epoch=" +
                    std::to_string(pager->cluster_map().epoch()));
  return OkStatus();
}

Status ApplyClusterConfig(const Config& config, ElasticParams* elastic, RepairParams* repair,
                          RemotePagerParams* pager) {
  if (elastic != nullptr) {
    auto groups = config.GetInt("cluster.page_groups", elastic->page_groups);
    RMP_RETURN_IF_ERROR(groups.status());
    if (*groups < 1 || *groups > static_cast<int64_t>(kMaxPageGroups)) {
      return InvalidArgumentError("cluster.page_groups out of range");
    }
    elastic->page_groups = static_cast<uint32_t>(*groups);
  }
  if (repair != nullptr) {
    auto rate = config.GetInt("cluster.rebalance_pages_per_sec",
                              static_cast<int64_t>(repair->rebalance_pages_per_sec));
    RMP_RETURN_IF_ERROR(rate.status());
    repair->rebalance_pages_per_sec = static_cast<uint64_t>(std::max<int64_t>(0, *rate));
    auto burst = config.GetInt("cluster.rebalance_burst",
                               static_cast<int64_t>(repair->rebalance_burst_pages));
    RMP_RETURN_IF_ERROR(burst.status());
    repair->rebalance_burst_pages = static_cast<uint64_t>(std::max<int64_t>(1, *burst));
  }
  if (pager != nullptr) {
    auto refresh = config.GetInt("cluster.epoch_refresh_ms", pager->map_refresh_interval / Millis(1));
    RMP_RETURN_IF_ERROR(refresh.status());
    pager->map_refresh_interval = Millis(std::max<int64_t>(0, *refresh));
  }
  return OkStatus();
}

Status ApplyObservabilityConfig(const Config& config, TestbedParams* params) {
  RMP_RETURN_IF_ERROR(ApplyTraceConfig(config, &params->pager.trace));
  RMP_RETURN_IF_ERROR(ApplyEventsConfig(config, &params->pager.events));
  RMP_RETURN_IF_ERROR(ApplySloConfig(config, &params->pager.slo));
  // The server journals take the same `events.*` knobs as the client's.
  RMP_RETURN_IF_ERROR(ApplyEventsConfig(config, &params->server_events));
  auto span_ring = config.GetInt("trace.span_ring", static_cast<int64_t>(params->server_span_ring));
  RMP_RETURN_IF_ERROR(span_ring.status());
  if (*span_ring < 0) {
    return InvalidArgumentError("trace.span_ring must be >= 0");
  }
  params->server_span_ring = static_cast<size_t>(*span_ring);
  return OkStatus();
}

}  // namespace rmp
