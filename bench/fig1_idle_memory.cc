// Figure 1: idle memory across the cluster over one week (Thursday through
// Wednesday, matching the paper's Feb 2-8 1995 trace). The paper's shape:
// free memory above 700 MB at night and over the weekend, dipping at noon
// and mid-afternoon on working days, never below ~300 MB.

#include <algorithm>
#include <cstdio>

#include "src/model/cluster_usage.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Figure 1: unused memory in a 16-workstation / 800 MB cluster ===\n\n");
  ClusterUsageParams params;
  const auto samples = SimulateClusterWeek(params, /*step_minutes=*/30);

  // Hourly sparkline per day plus daily min/mean/max.
  int current_day = -1;
  double day_min = 1e9;
  double day_max = 0.0;
  double day_sum = 0.0;
  int day_count = 0;
  double week_min = 1e9;
  auto flush_day = [&]() {
    if (current_day >= 0 && day_count > 0) {
      std::printf("%-10s  free MB: min %6.1f  mean %6.1f  max %6.1f\n",
                  DayName(current_day).c_str(), day_min, day_sum / day_count, day_max);
    }
    day_min = 1e9;
    day_max = 0.0;
    day_sum = 0.0;
    day_count = 0;
  };
  for (const UsageSample& s : samples) {
    if (s.day_of_week != current_day) {
      flush_day();
      current_day = s.day_of_week;
    }
    day_min = std::min(day_min, s.free_mb);
    day_max = std::max(day_max, s.free_mb);
    day_sum += s.free_mb;
    ++day_count;
    week_min = std::min(week_min, s.free_mb);
  }
  flush_day();

  std::printf("\nhour-of-day profile (weekdays), free MB:\n");
  for (int hour = 0; hour < 24; ++hour) {
    double sum = 0.0;
    int n = 0;
    for (const UsageSample& s : samples) {
      const bool weekend = s.day_of_week == 2 || s.day_of_week == 3;
      if (!weekend && static_cast<int>(s.hour_of_day) == hour) {
        sum += s.free_mb;
        ++n;
      }
    }
    const double mean = n > 0 ? sum / n : 0.0;
    const int bar = static_cast<int>(mean / 16.0);
    std::printf("  %02d:00  %6.1f  |%.*s\n", hour, mean, bar,
                "##################################################");
  }
  std::printf("\nweek minimum free memory: %.1f MB (paper: never below ~300 MB)\n", week_min);
  return week_min >= 250.0 ? 0 : 1;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
