// Cluster flight recorder (DESIGN.md §17).
//
// The journal's contract: bounded memory, monotonic sequence numbers whose
// gaps expose ring wrap, truncated hostile details, a disabled zero-capacity
// path, wire queryability via EVENTS_QUERY with a (next_seq, incarnation)
// cursor — and, the point of the exercise, a crash-recovery scenario whose
// post-mortem is one merged, human-readable timeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/proto/wire.h"
#include "src/util/bytes.h"
#include "src/util/config.h"
#include "src/util/events.h"

namespace rmp {
namespace {

// --- Journal unit contract --------------------------------------------------

TEST(EventJournalTest, AppendsAreOrderedAndSequenced) {
  EventJournal journal;
  journal.Append(EventKind::kHealth, "health", "peer=1 ALIVE->SUSPECT");
  journal.Append(EventKind::kRepair, "repair", "job armed");
  journal.Append(EventKind::kInfo, "test", "third");
  const std::vector<Event> all = journal.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[1].seq, 2u);
  EXPECT_EQ(all[2].seq, 3u);
  EXPECT_LE(all[0].wall_ns, all[1].wall_ns);
  EXPECT_LE(all[1].wall_ns, all[2].wall_ns);
  EXPECT_EQ(all[0].kind, EventKind::kHealth);
  EXPECT_EQ(all[1].actor, "repair");
  EXPECT_EQ(all[2].detail, "third");
  EXPECT_EQ(journal.next_seq(), 4u);
  EXPECT_EQ(journal.dropped(), 0);
}

TEST(EventJournalTest, RingWrapDropsOldestAndLeavesADetectableGap) {
  EventJournalOptions options;
  options.ring_capacity = 4;
  EventJournal journal(options);
  for (int i = 1; i <= 10; ++i) {
    journal.Append(EventKind::kInfo, "test", "event " + std::to_string(i));
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.dropped(), 6);
  EXPECT_EQ(journal.next_seq(), 11u);
  // A reader that asks from seq 1 gets first seq 7: the gap announces the
  // wrap without any side channel.
  const std::vector<Event> since = journal.Since(1);
  ASSERT_EQ(since.size(), 4u);
  EXPECT_EQ(since.front().seq, 7u);
  EXPECT_EQ(since.back().seq, 10u);
  // A cursor inside the live range resumes exactly.
  const std::vector<Event> tail = journal.Since(9);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().seq, 9u);
  // The limit bounds a huge poll.
  EXPECT_EQ(journal.Since(1, 2).size(), 2u);
}

TEST(EventJournalTest, HostileDetailIsTruncatedAtAppend) {
  EventJournalOptions options;
  options.max_detail_bytes = 16;
  EventJournal journal(options);
  journal.Append(EventKind::kInfo, "test", std::string(1000, 'x'));
  const std::vector<Event> all = journal.All();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].detail.size(), 16u);
}

TEST(EventJournalTest, ZeroCapacityIsTheDisabledPath) {
  EventJournalOptions options;
  options.ring_capacity = 0;
  EventJournal journal(options);
  journal.Append(EventKind::kCrash, "test", "never stored");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.All().size(), 0u);
  EXPECT_EQ(journal.ToJson(), "[]");
}

TEST(EventJournalTest, SetCapacityClearsButKeepsNumbering) {
  EventJournal journal;
  journal.Append(EventKind::kInfo, "test", "one");
  journal.Append(EventKind::kInfo, "test", "two");
  journal.SetCapacity(8);
  EXPECT_EQ(journal.size(), 0u);
  journal.Append(EventKind::kInfo, "test", "three");
  EXPECT_EQ(journal.All().front().seq, 3u);  // Sequence numbering continued.
}

TEST(EventJournalTest, ToJsonEscapesAndCarriesEveryField) {
  EventJournal journal;
  journal.Append(EventKind::kCrash, "server-0", "died \"hard\"\nbackslash \\");
  const std::string json = journal.ToJson();
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"crash\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"actor\":\"server-0\""), std::string::npos) << json;
  EXPECT_NE(json.find("died \\\"hard\\\"\\nbackslash \\\\"), std::string::npos) << json;
  // Raw control bytes must never appear inside the JSON string literal.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(EventJournalTest, EventsConfigKeysApply) {
  auto config = Config::Parse(
      "events.ring = 2\n"
      "events.max_detail = 8\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EventJournalOptions options;
  ASSERT_TRUE(ApplyEventsConfig(*config, &options).ok());
  EXPECT_EQ(options.ring_capacity, 2u);
  EXPECT_EQ(options.max_detail_bytes, 8u);
  EventJournal journal(options);
  journal.Append(EventKind::kInfo, "a", "x");
  journal.Append(EventKind::kInfo, "b", "y");
  journal.Append(EventKind::kInfo, "c", "0123456789");
  EXPECT_EQ(journal.size(), 2u);  // ring=2 wrapped past the first event.
  EXPECT_EQ(journal.All().back().detail.size(), 8u);

  // events.ring = 0 documents "journal disabled".
  auto off = Config::Parse("events.ring = 0\n");
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(ApplyEventsConfig(*off, &options).ok());
  EXPECT_EQ(options.ring_capacity, 0u);
}

// --- EVENTS_QUERY over the wire ---------------------------------------------

TEST(EventsWireTest, ServerAnswersEventsQueryWithCursorAndIncarnation) {
  MemoryServer server;
  server.events().Append(EventKind::kInfo, "test", "first");
  server.events().Append(EventKind::kHealth, "test", "second");

  const Message reply = server.Handle(MakeEventsQuery(1, 0));
  ASSERT_EQ(reply.type, MessageType::kEventsReply);
  EXPECT_EQ(reply.slot, server.incarnation());
  EXPECT_EQ(reply.count, server.events().next_seq());
  const std::string json(IntrospectionJson(reply));
  EXPECT_NE(json.find("\"detail\":\"first\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"detail\":\"second\""), std::string::npos) << json;

  // Polling from the cursor returns only what happened since.
  server.events().Append(EventKind::kRepair, "test", "third");
  const Message delta = server.Handle(MakeEventsQuery(2, reply.count));
  ASSERT_EQ(delta.type, MessageType::kEventsReply);
  const std::string delta_json(IntrospectionJson(delta));
  EXPECT_EQ(delta_json.find("first"), std::string::npos) << delta_json;
  EXPECT_NE(delta_json.find("third"), std::string::npos) << delta_json;

  // The frame round-trips the wire intact, JSON and cursor included.
  auto decoded = Decode(Encode(delta));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(IntrospectionJson(*decoded), delta_json);
  EXPECT_EQ(decoded->count, delta.count);
}

TEST(EventsWireTest, ClientQueryEventsSeesServerSideDecisions) {
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  (*bed)->server(0).events().Append(EventKind::kInfo, "test", "hello timeline");
  auto* pager = (*bed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  uint64_t next_seq = 0;
  uint64_t incarnation = 0;
  auto json = pager->cluster().peer(0).QueryEvents(0, &next_seq, &incarnation);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("hello timeline"), std::string::npos);
  EXPECT_EQ(next_seq, (*bed)->server(0).events().next_seq());
  EXPECT_EQ(incarnation, (*bed)->server(0).incarnation());
}

// --- The post-mortem timeline ------------------------------------------------

HealthParams FastHealth() {
  HealthParams params;
  params.heartbeat_interval = Millis(50);
  params.suspect_after = 1;
  params.dead_after = 3;
  return params;
}

TEST(FlightRecorderTest, CrashRepairScenarioYieldsOneMergedTimeline) {
  // Mirrored cluster, full self-healing walk: every state machine involved —
  // fault plan, health monitor, repair coordinator, testbed lifecycle, the
  // servers themselves — must land its decisions on one sorted timeline.
  TestbedParams params;
  params.policy = Policy::kMirroring;
  params.data_servers = 3;
  params.server_capacity_pages = 512;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  ASSERT_TRUE((*bed)->EnableSelfHealing(FastHealth()).ok());

  auto loaded = (*bed)->Preload(40, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  TimeNs now = *loaded;
  auto pumped = (*bed)->repair()->Pump(now);  // Baseline probes.
  ASSERT_TRUE(pumped.ok());

  (*bed)->CrashServer(1);
  pumped = (*bed)->repair()->Pump(*pumped + Millis(50));
  ASSERT_TRUE(pumped.ok());
  auto quiesced = (*bed)->repair()->RunToQuiescence(*pumped);
  ASSERT_TRUE(quiesced.ok());
  (*bed)->RestartServer(1);
  pumped = (*bed)->repair()->Pump(*quiesced + Millis(50));
  ASSERT_TRUE(pumped.ok());

  const std::string timeline = (*bed)->DumpFlightRecorder();
  // The header counts what was merged; the client journal plus one journal
  // per server were all non-empty here.
  EXPECT_NE(timeline.find("=== flight recorder:"), std::string::npos) << timeline;
  // Lifecycle, health, repair and the server's own crash line all present.
  EXPECT_NE(timeline.find("crash"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("health"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("repair"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("restart"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("all pages lost"), std::string::npos) << timeline;
  // Timestamps are rendered relative and sorted: the first line is offset 0.
  EXPECT_NE(timeline.find("[+  0.000000s]"), std::string::npos) << timeline;
}

TEST(FlightRecorderTest, FailedRecoveryPrintsTheTimelinePostMortem) {
  // The acceptance scenario: a deliberately unrecoverable crash (no
  // reliability policy, no redundancy) ends in a failed pagein, and the
  // post-mortem dump explains why — the crash, the health transitions, and
  // the repair coordinator's findings, stitched into one timeline.
  TestbedParams params;
  params.policy = Policy::kNoReliability;
  params.data_servers = 2;
  params.server_capacity_pages = 512;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  ASSERT_TRUE((*bed)->EnableSelfHealing(FastHealth()).ok());

  auto loaded = (*bed)->Preload(40, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto pumped = (*bed)->repair()->Pump(*loaded);
  ASSERT_TRUE(pumped.ok());

  // Find a page on server 0, then lose it for good.
  ASSERT_GT((*bed)->server(0).live_pages(), 0u);
  (*bed)->CrashServer(0);
  pumped = (*bed)->repair()->Pump(*pumped + Millis(50));  // Health sees DEAD.
  ASSERT_TRUE(pumped.ok());

  PageBuffer in;
  bool any_failed = false;
  TimeNs now = *pumped;
  for (uint64_t page = 0; page < 40 && !any_failed; ++page) {
    auto done = (*bed)->backend().PageIn(now, page, in.span());
    if (!done.ok()) {
      any_failed = true;
    } else {
      now = *done;
    }
  }
  const std::string timeline = (*bed)->DumpFlightRecorder();
  EXPECT_TRUE(any_failed) << "NO_RELIABILITY recovered from a crash?\n" << timeline;
  // This is the dump a failing scenario leaves in the test log.
  std::printf("%s", timeline.c_str());
  EXPECT_NE(timeline.find("crashed"), std::string::npos) << timeline;
  EXPECT_NE(timeline.find("health"), std::string::npos) << timeline;
  ASSERT_NE((*bed)->events(), nullptr);
  EXPECT_GT((*bed)->events()->size(), 0u);
}

}  // namespace
}  // namespace rmp
