// Error handling primitives for the RMP project.
//
// No exceptions cross module boundaries: fallible operations return
// rmp::Status (for side-effecting calls) or rmp::Result<T> (for calls that
// produce a value). Both carry an ErrorCode and a human-readable message.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rmp {

// Coarse error taxonomy. Mirrors the failure modes the paper's pager must
// distinguish: a full server (kNoSpace) triggers migration, a dead server
// (kUnavailable) triggers recovery, a protocol violation (kProtocol) is fatal.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNoSpace,       // Server denied a swap-space allocation.
  kUnavailable,   // Peer crashed or connection lost.
  kProtocol,      // Malformed or unexpected wire message.
  kCorruption,    // Checksum mismatch on page data.
  kIoError,       // Local disk / socket syscall failure.
  kFailedPrecondition,
  kInternal,
  kDataLoss,      // Page content is gone from every source: the failure
                  // exceeded the policy's tolerance (e.g. both mirror
                  // replicas dead). Unlike kUnavailable this is permanent —
                  // retrying cannot help, and the pager must surface it.
  kResourceExhausted,  // A per-tenant quota (request rate, queue share)
                       // rejected the op. Unlike kNoSpace this is transient:
                       // the token bucket refills, so backing off and
                       // retrying is the right client response. Appended
                       // after kDataLoss so older codes keep their wire value.
  kStaleEpoch,         // The request carried a cluster-map epoch older than
                       // the server's. Transient by design: the client must
                       // refresh its map and retry against the new owner —
                       // never surfaced as data loss. Appended last so older
                       // codes keep their wire value.
};

// Returns a stable human-readable name, e.g. "NO_SPACE".
std::string_view ErrorCodeName(ErrorCode code);

// Value-semantic status: either OK or an (code, message) pair.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NO_SPACE: server 3 denied allocation".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

// Convenience constructors, one per ErrorCode that call sites use.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status NoSpaceError(std::string message);
Status UnavailableError(std::string message);
Status ProtocolError(std::string message);
Status CorruptionError(std::string message);
Status IoError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DataLossError(std::string message);
Status StaleEpochError(std::string message);

// Result<T>: a T or an error Status. Minimal std::expected stand-in (C++20).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...);`
  // both work at call sites.
  Result(T value) : value_(std::move(value)) {}                    // NOLINT
  Result(Status status) : status_(std::move(status)) {             // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

}  // namespace rmp

// Propagates errors up the call stack, expression-statement style:
//   RMP_RETURN_IF_ERROR(server.Store(page));
#define RMP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::rmp::Status rmp_status_ = (expr);      \
    if (!rmp_status_.ok()) {                 \
      return rmp_status_;                    \
    }                                        \
  } while (false)

// Unwraps a Result<T> into `lhs` or propagates the error.
//   RMP_ASSIGN_OR_RETURN(auto frame, pool.Allocate());
#define RMP_ASSIGN_OR_RETURN(lhs, expr)          \
  RMP_ASSIGN_OR_RETURN_IMPL_(                    \
      RMP_STATUS_CONCAT_(rmp_result_, __LINE__), lhs, expr)

#define RMP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define RMP_STATUS_CONCAT_(a, b) RMP_STATUS_CONCAT_IMPL_(a, b)
#define RMP_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SRC_UTIL_STATUS_H_
