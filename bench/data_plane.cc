// Data-plane fast-path microbenches, covering the three layers the sharded
// store / SIMD / batching work touches:
//
//   1. XOR kernel GB/s: the portable scalar loop vs the runtime-dispatched
//      SIMD path (XorBytes) that parity policies fold pages with.
//   2. Server store ops/s at 1/4/16 threads, with the page store configured
//      as one lock stripe (the old global-mutex server) vs the default
//      sharded layout, under a modeled per-page service time (see
//      kStoreServiceMicros for why the bench models it).
//   3. Pageout wire cost at batch=1 (one PAGEOUT message per page) vs
//      batch=32 (one PAGEOUT_BATCH frame), over the in-process transport and
//      a loopback TCP connection.
//   4. Compressed cold tier: effective capacity (logical/physical bytes) and
//      cold pagein p50 across a compressibility sweep (store.hot_pages small,
//      promotion off, so reads stay on the decompress path), a dedup run
//      (many stores, few distinct contents), and a flat tier-off pagein
//      baseline for the added-latency comparison.
//
// Every row is also emitted through EmitBenchResult, so results land in
// BENCH_data_plane.json. `--quick` shrinks the iteration counts to smoke-test
// size (the ctest target runs that mode).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/server/memory_server.h"
#include "src/transport/inproc_transport.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) { return std::chrono::duration<double>(d).count(); }

// --- 1. XOR kernels ---------------------------------------------------------

double XorGigabytesPerSec(void (*kernel)(uint8_t*, const uint8_t*, size_t), int iters) {
  std::vector<uint8_t> dst(kPageSize);
  std::vector<uint8_t> src(kPageSize);
  FillPattern(dst, 1);
  FillPattern(src, 2);
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    kernel(dst.data(), src.data(), kPageSize);
  }
  const double seconds = Seconds(Clock::now() - start);
  // Defeat dead-code elimination: the accumulated page must stay observable.
  volatile uint8_t sink = dst[0];
  (void)sink;
  return static_cast<double>(iters) * static_cast<double>(kPageSize) / seconds / 1e9;
}

void BenchXor(bool quick) {
  const int iters = quick ? 20000 : 500000;
  const double scalar = XorGigabytesPerSec(&XorBytesScalar, iters);
  const double simd = XorGigabytesPerSec(&XorBytes, iters);
  std::printf("xor  scalar %7.2f GB/s\n", scalar);
  std::printf("xor  %-6s %7.2f GB/s   speedup %.2fx\n", std::string(XorBytesImplName()).c_str(),
              simd, simd / scalar);
  EmitBenchResult("data_plane", "xor/scalar", "throughput", scalar, "GB/s");
  EmitBenchResult("data_plane", "xor/" + std::string(XorBytesImplName()), "throughput", simd,
                  "GB/s");
}

// --- 2. Sharded vs single-mutex server --------------------------------------

constexpr int kSlotsPerThread = 64;
// Modeled per-page service time, held under the slot's shard lock. On a host
// with fewer cores than worker threads (the CI container has one), the raw
// memcpys of concurrent stores time-slice onto the same core and wall clock
// cannot tell one mutex from sixteen. A slot's service time, in contrast,
// sleeps — so striped shards overlap it exactly the way multi-core memcpys
// overlap on real hardware, while the single-mutex baseline serializes every
// operation behind it. This measures the serialization that lock granularity
// controls, independent of how many cores the bench host happens to have.
constexpr int64_t kStoreServiceMicros = 20;

double ServerOpsPerSec(uint32_t shards, int threads, int ops_per_thread) {
  MemoryServerParams params;
  params.name = "bench";
  params.capacity_pages = 1 << 16;
  params.store_shards = shards;
  params.store_service_micros = kStoreServiceMicros;
  MemoryServer server(params);
  auto first = server.Allocate(static_cast<uint64_t>(threads) * kSlotsPerThread);
  if (!first.ok()) {
    std::fprintf(stderr, "alloc failed: %s\n", first.status().ToString().c_str());
    std::exit(1);
  }
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PageBuffer page;
      FillPattern(page.span(), static_cast<uint64_t>(t) + 7);
      const uint64_t base = *first + static_cast<uint64_t>(t) * kSlotsPerThread;
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < ops_per_thread; ++i) {
        // Even i stores a slot, odd i loads it back, so every load hits.
        const uint64_t slot = base + static_cast<uint64_t>((i / 2) % kSlotsPerThread);
        if (i % 2 == 0) {
          if (!server.Store(slot, page.span()).ok()) {
            std::exit(1);
          }
        } else {
          if (!server.Load(slot).ok()) {
            std::exit(1);
          }
        }
      }
    });
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) {
    worker.join();
  }
  const double seconds = Seconds(Clock::now() - start);
  return static_cast<double>(threads) * static_cast<double>(ops_per_thread) / seconds;
}

void BenchServerStore(bool quick) {
  const int ops = quick ? 2000 : 40000;
  for (const int threads : {1, 4, 16}) {
    const double single = ServerOpsPerSec(/*shards=*/1, threads, ops / threads);
    const double sharded = ServerOpsPerSec(/*shards=*/16, threads, ops / threads);
    std::printf("server t=%-2d  1-shard %9.0f ops/s   16-shard %9.0f ops/s   speedup %.2fx\n",
                threads, single, sharded, sharded / single);
    const std::string suffix = "/t" + std::to_string(threads);
    EmitBenchResult("data_plane", "server/shards1" + suffix, "ops_per_sec", single, "ops/s");
    EmitBenchResult("data_plane", "server/shards16" + suffix, "ops_per_sec", sharded, "ops/s");
  }
}

// --- 3. Batched vs single-page pageouts -------------------------------------

constexpr int kWireSlots = 64;
constexpr int kBatch = 32;

double PageoutPagesPerSec(Transport* transport, uint64_t first_slot, int batch, int total_pages) {
  PageBuffer page;
  FillPattern(page.span(), 42);
  uint64_t request_id = 1000;
  const auto start = Clock::now();
  if (batch == 1) {
    for (int i = 0; i < total_pages; ++i) {
      const uint64_t slot = first_slot + static_cast<uint64_t>(i % kWireSlots);
      auto reply = transport->Call(MakePageOut(++request_id, slot, page.span()));
      if (!reply.ok() || reply->status_code() != ErrorCode::kOk) {
        std::fprintf(stderr, "pageout failed: %s\n", reply.status().ToString().c_str());
        std::exit(1);
      }
    }
  } else {
    std::vector<uint64_t> slots(static_cast<size_t>(batch));
    std::vector<uint8_t> payload(static_cast<size_t>(batch) * kPageSize);
    for (int j = 0; j < batch; ++j) {
      std::memcpy(payload.data() + static_cast<size_t>(j) * kPageSize, page.data(), kPageSize);
    }
    for (int i = 0; i < total_pages; i += batch) {
      for (int j = 0; j < batch; ++j) {
        slots[static_cast<size_t>(j)] = first_slot + static_cast<uint64_t>((i + j) % kWireSlots);
      }
      auto reply = transport->Call(MakePageOutBatch(++request_id, slots, payload));
      if (!reply.ok() || reply->status_code() != ErrorCode::kOk) {
        std::fprintf(stderr, "batch pageout failed: %s\n", reply.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  const double seconds = Seconds(Clock::now() - start);
  return static_cast<double>(total_pages) / seconds;
}

uint64_t AllocWireSlots(Transport* transport) {
  auto alloc = transport->Call(MakeAllocRequest(1, kWireSlots));
  if (!alloc.ok() || alloc->status_code() != ErrorCode::kOk) {
    std::fprintf(stderr, "alloc failed: %s\n", alloc.status().ToString().c_str());
    std::exit(1);
  }
  return alloc->slot;
}

void ReportBatchPair(const char* transport_name, double single, double batched) {
  std::printf("%-7s batch=1 %9.0f pages/s   batch=%d %9.0f pages/s   speedup %.2fx\n",
              transport_name, single, kBatch, batched, batched / single);
  const std::string prefix = std::string(transport_name) + "/batch";
  EmitBenchResult("data_plane", prefix + "1", "pages_per_sec", single, "pages/s");
  EmitBenchResult("data_plane", prefix + std::to_string(kBatch), "pages_per_sec", batched,
                  "pages/s");
}

void BenchBatchedPageouts(bool quick) {
  {
    MemoryServerParams params;
    params.name = "inproc-bench";
    params.capacity_pages = kWireSlots + 16;
    MemoryServer server(params);
    InProcTransport transport(&server);
    const uint64_t first_slot = AllocWireSlots(&transport);
    const int pages = quick ? 4096 : 131072;
    const double single = PageoutPagesPerSec(&transport, first_slot, 1, pages);
    const double batched = PageoutPagesPerSec(&transport, first_slot, kBatch, pages);
    ReportBatchPair("inproc", single, batched);
  }
  {
    MemoryServerParams params;
    params.name = "tcp-bench";
    params.capacity_pages = kWireSlots + 16;
    auto server = std::make_shared<MemoryServer>(params);
    struct Handler : MessageHandler {
      explicit Handler(std::shared_ptr<MemoryServer> s) : server(std::move(s)) {}
      Message Handle(const Message& request) override { return server->Handle(request); }
      std::shared_ptr<MemoryServer> server;
    };
    auto started = TcpServer::Start(
        0, [server] { return std::unique_ptr<MessageHandler>(new Handler(server)); },
        /*required_token=*/"", /*session_workers=*/4);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", started.status().ToString().c_str());
      std::exit(1);
    }
    auto client = TcpTransport::Connect("127.0.0.1", (*started)->port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", client.status().ToString().c_str());
      std::exit(1);
    }
    const uint64_t first_slot = AllocWireSlots(client->get());
    const int pages = quick ? 2048 : 32768;
    const double single = PageoutPagesPerSec(client->get(), first_slot, 1, pages);
    const double batched = PageoutPagesPerSec(client->get(), first_slot, kBatch, pages);
    ReportBatchPair("tcp", single, batched);
  }
}

// --- 4. Compressed cold tier --------------------------------------------------

struct ComprSpec {
  const char* name;
  unsigned compr_min;  // FillCompressiblePage knobs: percent of the page that
  unsigned compr_max;  // is a zero run, drawn per page from [min, max].
};

MemoryServerParams TierBenchParams(const char* name, uint64_t capacity_pages, uint32_t hot_pages) {
  MemoryServerParams params;
  params.name = name;
  params.capacity_pages = capacity_pages;
  params.store_shards = 4;
  params.tier.hot_page_limit = hot_pages;
  // Promotion off: repeated loads stay cold, so the pagein numbers measure
  // the decompress + verify path rather than a warmed hot set.
  params.tier.promote_after_hits = 0;
  return params;
}

uint64_t StoreSweepPages(MemoryServer* server, int pages, uint64_t seed0, const ComprSpec& spec) {
  auto first = server->Allocate(static_cast<uint64_t>(pages));
  if (!first.ok()) {
    std::fprintf(stderr, "tier alloc failed: %s\n", first.status().ToString().c_str());
    std::exit(1);
  }
  PageBuffer page;
  for (int i = 0; i < pages; ++i) {
    FillCompressiblePage(page.span(), seed0 + static_cast<uint64_t>(i), spec.compr_min,
                         spec.compr_max);
    if (!server->Store(*first + static_cast<uint64_t>(i), page.span()).ok()) {
      std::exit(1);
    }
  }
  return *first;
}

double PageinP50Micros(MemoryServer* server, uint64_t first_slot, int pages, int reads) {
  std::vector<double> micros;
  micros.reserve(static_cast<size_t>(reads));
  for (int i = 0; i < reads; ++i) {
    // Stride through the slots so consecutive reads don't share an extent.
    const uint64_t slot = first_slot + static_cast<uint64_t>((i * 17) % pages);
    const auto start = Clock::now();
    auto loaded = server->Load(slot);
    const double us = Seconds(Clock::now() - start) * 1e6;
    if (!loaded.ok()) {
      std::fprintf(stderr, "tier load failed: %s\n", loaded.status().ToString().c_str());
      std::exit(1);
    }
    micros.push_back(us);
  }
  std::sort(micros.begin(), micros.end());
  return micros[micros.size() / 2];
}

void BenchCompressedTier(bool quick) {
  const int pages = quick ? 192 : 1024;
  const int reads = quick ? 384 : 4096;

  // Flat baseline: same store, tier off, so the pagein delta isolates what
  // the decompress path adds.
  {
    MemoryServer flat(TierBenchParams("flat-bench", static_cast<uint64_t>(pages) + 64,
                                      /*hot_pages=*/0));
    const uint64_t first = StoreSweepPages(&flat, pages, 5000, {"c50", 45, 55});
    const double p50 = PageinP50Micros(&flat, first, pages, reads);
    std::printf("tier flat       pagein p50 %6.2f us   (tier off)\n", p50);
    EmitBenchResult("data_plane", "tier/flat/pagein_p50", "latency", p50, "us");
  }

  const ComprSpec sweep[] = {{"c25", 20, 30}, {"c50", 45, 55}, {"c75", 70, 80}, {"random", 0, 0}};
  for (const ComprSpec& spec : sweep) {
    MemoryServer server(TierBenchParams("tier-bench", static_cast<uint64_t>(pages) + 64,
                                        /*hot_pages=*/64));
    const uint64_t first = StoreSweepPages(&server, pages, 9000, spec);
    const double ratio =
        static_cast<double>(server.logical_bytes()) / static_cast<double>(server.physical_bytes());
    const double p50 = PageinP50Micros(&server, first, pages, reads);
    std::printf("tier %-10s capacity %5.2fx   pagein p50 %6.2f us\n", spec.name, ratio, p50);
    const std::string prefix = std::string("tier/") + spec.name;
    EmitBenchResult("data_plane", prefix + "/capacity", "effective_capacity", ratio, "x");
    EmitBenchResult("data_plane", prefix + "/pagein_p50", "latency", p50, "us");
  }

  // Dedup: many stores, 16 distinct contents — physical bytes track the
  // distinct set, so the ratio shows the refcounted index working.
  {
    MemoryServer server(TierBenchParams("dedup-bench", static_cast<uint64_t>(pages) + 64,
                                        /*hot_pages=*/64));
    auto first = server.Allocate(static_cast<uint64_t>(pages));
    if (!first.ok()) {
      std::exit(1);
    }
    PageBuffer page;
    for (int i = 0; i < pages; ++i) {
      FillCompressiblePage(page.span(), 7000 + static_cast<uint64_t>(i % 16), 45, 55);
      if (!server.Store(*first + static_cast<uint64_t>(i), page.span()).ok()) {
        std::exit(1);
      }
    }
    const double ratio =
        static_cast<double>(server.logical_bytes()) / static_cast<double>(server.physical_bytes());
    std::printf("tier dedup      capacity %5.2fx   (16 distinct contents)\n", ratio);
    EmitBenchResult("data_plane", "tier/dedup/capacity", "effective_capacity", ratio, "x");
  }
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }
  BenchXor(quick);
  BenchServerStore(quick);
  BenchBatchedPageouts(quick);
  BenchCompressedTier(quick);
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
