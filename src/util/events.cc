#include "src/util/events.h"

#include <chrono>

namespace rmp {

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kHealth:
      return "health";
    case EventKind::kRepair:
      return "repair";
    case EventKind::kRebalance:
      return "rebalance";
    case EventKind::kMigrate:
      return "migrate";
    case EventKind::kEpoch:
      return "epoch";
    case EventKind::kStaleEpoch:
      return "stale_epoch";
    case EventKind::kTenantShed:
      return "tenant_shed";
    case EventKind::kFault:
      return "fault";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kMembership:
      return "membership";
    case EventKind::kInfo:
      return "info";
  }
  return "unknown";
}

int64_t EventWallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ApplyEventsConfig(const Config& config, EventJournalOptions* options) {
  auto ring = config.GetInt("events.ring", static_cast<int64_t>(options->ring_capacity));
  RMP_RETURN_IF_ERROR(ring.status());
  if (*ring < 0) {
    return InvalidArgumentError("events.ring must be >= 0");
  }
  options->ring_capacity = static_cast<size_t>(*ring);
  auto detail = config.GetInt("events.max_detail", static_cast<int64_t>(options->max_detail_bytes));
  RMP_RETURN_IF_ERROR(detail.status());
  if (*detail < 1) {
    return InvalidArgumentError("events.max_detail must be >= 1");
  }
  options->max_detail_bytes = static_cast<size_t>(*detail);
  return OkStatus();
}

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

EventJournal::EventJournal(const EventJournalOptions& options)
    : options_(options), ring_(options.ring_capacity) {}

void EventJournal::Append(EventKind kind, std::string_view actor, std::string_view detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) {
    return;
  }
  Event& slot = ring_[ring_next_];
  if (ring_size_ == ring_.size()) {
    ++dropped_;
  } else {
    ++ring_size_;
  }
  slot.seq = next_seq_++;
  slot.wall_ns = EventWallNanos();
  slot.kind = kind;
  slot.actor.assign(actor);
  slot.detail.assign(detail.substr(0, options_.max_detail_bytes));
  ring_next_ = (ring_next_ + 1) % ring_.size();
}

std::vector<Event> EventJournal::Since(uint64_t min_seq, size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  if (ring_.empty() || ring_size_ == 0) {
    return out;
  }
  const size_t begin = ring_size_ == ring_.size() ? ring_next_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    const Event& event = ring_[(begin + i) % ring_.size()];
    if (event.seq < min_seq) {
      continue;
    }
    out.push_back(event);
    if (limit > 0 && out.size() >= limit) {
      break;
    }
  }
  return out;
}

std::string EventJournal::ToJson(uint64_t min_seq, size_t limit) const {
  const std::vector<Event> events = Since(min_seq, limit);
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"seq\":" + std::to_string(event.seq);
    out += ",\"t\":" + std::to_string(event.wall_ns);
    out += ",\"kind\":\"" + std::string(EventKindName(event.kind)) + "\"";
    out += ",\"actor\":\"" + JsonEscape(event.actor) + "\"";
    out += ",\"detail\":\"" + JsonEscape(event.detail) + "\"}";
  }
  out += "]";
  return out;
}

size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_size_;
}

uint64_t EventJournal::next_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

int64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

size_t EventJournal::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void EventJournal::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.ring_capacity = capacity;
  ring_.assign(capacity, Event());
  ring_next_ = 0;
  ring_size_ = 0;
}

void EventJournal::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(ring_.size(), Event());
  ring_next_ = 0;
  ring_size_ = 0;
}

}  // namespace rmp
