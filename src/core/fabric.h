// NetworkFabric: the one shared Ethernet segment every page transfer rides.
//
// All servers in the paper's cluster hang off a single 10 Mbit/s Ethernet, so
// a mirrored pageout costs two *serialized* wire occupancies — that is why
// MIRRORING roughly doubles pageout cost while PARITY LOGGING pays only
// 1 + 1/S transfers. Fabric charges each transfer as: protocol processing on
// the client CPU, then queued occupancy of the wire Resource.
//
// A fabric with no model is free (TCP mode: wall-clock reality is the timing).

#ifndef SRC_CORE_FABRIC_H_
#define SRC_CORE_FABRIC_H_

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/net/network_model.h"
#include "src/sim/resource.h"
#include "src/util/units.h"

namespace rmp {

// Pseudo-peer index meaning "the shared segment" (no dedicated link).
inline constexpr size_t kSharedSegment = static_cast<size_t>(-1);

class NetworkFabric {
 public:
  NetworkFabric() : wire_("ethernet") {}
  explicit NetworkFabric(std::shared_ptr<const NetworkModel> model)
      : model_(std::move(model)), wire_("ethernet") {}

  // Heterogeneous networks (§5): give one peer its own link — e.g. a
  // supercomputer reached over a dedicated ATM line — instead of the shared
  // segment. Transfers to that peer queue on the dedicated wire and use the
  // dedicated model's timing; everyone else still shares the segment.
  void SetPeerLink(size_t peer, std::shared_ptr<const NetworkModel> model) {
    auto link = std::make_unique<Link>();
    link->model = std::move(model);
    peer_links_[peer] = std::move(link);
  }
  bool HasPeerLink(size_t peer) const { return peer_links_.count(peer) > 0; }

  struct TransferCost {
    TimeNs completion = 0;
    DurationNs protocol = 0;
    DurationNs wire = 0;    // Includes queueing behind earlier transfers.
    DurationNs queued = 0;  // The queueing part of `wire` alone — time spent
                            // waiting behind earlier transfers before this
                            // one occupied the wire (the tracer's kQueue).
  };

  // Charges one client-blocking transfer of `bytes` issued at `now` to
  // `peer` (kSharedSegment or a peer without a dedicated link rides the
  // shared wire).
  TransferCost Transfer(TimeNs now, uint64_t bytes, size_t peer = kSharedSegment) {
    const NetworkModel* model = ModelFor(peer);
    TransferCost cost;
    if (model == nullptr) {
      cost.completion = now;
      return cost;
    }
    cost.protocol = model->ProtocolTime();
    const TimeNs enqueue = now + cost.protocol;
    const DurationNs service = model->TransferTime(bytes);
    const TimeNs done = WireFor(peer).Serve(enqueue, service);
    cost.wire = done - enqueue;
    cost.queued = std::max<DurationNs>(0, cost.wire - service);
    cost.completion = done;
    return cost;
  }

  // Write-behind variant for pageouts: the paging daemon queues the page and
  // the application proceeds once the data is handed to the protocol stack —
  // unless the wire has fallen more than `async_lag` behind (socket buffer
  // full), in which case the sender blocks until the backlog drains to the
  // lag window. Pageins issued later still queue behind these writes on the
  // wire Resource, which is why pagein-heavy phases see the full cost.
  TransferCost TransferAsync(TimeNs now, uint64_t bytes, size_t peer = kSharedSegment) {
    const NetworkModel* model = ModelFor(peer);
    TransferCost cost;
    if (model == nullptr) {
      cost.completion = now;
      return cost;
    }
    cost.protocol = model->ProtocolTime();
    const TimeNs enqueue = now + cost.protocol;
    const DurationNs service = model->TransferTime(bytes);
    const TimeNs done = WireFor(peer).Serve(enqueue, service);
    const TimeNs unblock = std::max(enqueue, done - async_lag_);
    cost.wire = unblock - enqueue;
    // The client-visible blocking (if any) is backlog: the wire had fallen
    // behind, so attribute what the sender did wait to queueing.
    cost.queued = std::max<DurationNs>(0, cost.wire - service);
    cost.completion = unblock;
    return cost;
  }

  void set_async_lag(DurationNs lag) { async_lag_ = lag; }
  DurationNs async_lag() const { return async_lag_; }

  bool has_model() const { return model_ != nullptr; }
  const NetworkModel* model() const { return model_.get(); }
  Resource& wire() { return wire_; }

 private:
  struct Link {
    std::shared_ptr<const NetworkModel> model;
    Resource wire{"peer-link"};
  };

  const NetworkModel* ModelFor(size_t peer) const {
    auto it = peer_links_.find(peer);
    if (it != peer_links_.end()) {
      return it->second->model.get();
    }
    return model_.get();
  }
  Resource& WireFor(size_t peer) {
    auto it = peer_links_.find(peer);
    return it != peer_links_.end() ? it->second->wire : wire_;
  }

  std::shared_ptr<const NetworkModel> model_;
  Resource wire_;
  std::unordered_map<size_t, std::unique_ptr<Link>> peer_links_;
  // Default window: roughly four in-flight pages of socket buffering.
  DurationNs async_lag_ = Millis(40);
};

// Bytes a page occupies on the wire including the RMP message header.
inline constexpr uint64_t kPageWireBytes = kPageSize + 52;
// Bytes of a small control message (alloc/free/load/pagein request).
inline constexpr uint64_t kControlWireBytes = 52;
// Bytes a batched transfer of `pages` pages occupies: one message header
// amortized over the batch, plus an 8-byte slot and a page per entry. The
// savings over `pages` separate messages is the whole point of batching —
// one header and one protocol crossing instead of `pages` of each.
inline constexpr uint64_t BatchWireBytes(uint64_t pages) {
  return kControlWireBytes + pages * (kPageSize + 8);
}

}  // namespace rmp

#endif  // SRC_CORE_FABRIC_H_
