#include "src/model/cluster_usage.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace rmp {
namespace {

// The trace starts Thursday (the paper's plot runs Thursday..Wednesday).
const char* kDayNames[7] = {"Thursday", "Friday",  "Saturday", "Sunday",
                            "Monday",   "Tuesday", "Wednesday"};

bool IsWeekend(int day_of_week) { return day_of_week == 2 || day_of_week == 3; }

}  // namespace

std::string DayName(int day_of_week) { return kDayNames[day_of_week % 7]; }

double SessionProbability(int day_of_week, double hour_of_day) {
  // Two gaussian bumps: late morning and mid afternoon (the paper notes
  // usage "at each peak ... at noon and afternoon of working days").
  const double morning = std::exp(-std::pow(hour_of_day - 11.5, 2.0) / (2.0 * 2.0 * 2.0));
  const double afternoon = std::exp(-std::pow(hour_of_day - 15.5, 2.0) / (2.0 * 2.5 * 2.5));
  double p = 0.85 * std::max(morning, afternoon);
  if (IsWeekend(day_of_week)) {
    p *= 0.15;  // A few people drop by at the weekend.
  }
  return std::clamp(p, 0.0, 1.0);
}

std::vector<UsageSample> SimulateClusterWeek(const ClusterUsageParams& params, int step_minutes) {
  std::vector<UsageSample> samples;
  Rng rng(params.seed);
  const double total_mb = params.memory_mb_each * params.workstations;
  // Per-workstation session state persists across samples so usage looks
  // like sessions, not noise: a user arrives, works a while, leaves.
  struct Station {
    double session_mb = 0.0;  // 0 = idle.
    double batch_mb = 0.0;
    int session_ttl = 0;  // Samples remaining.
    int batch_ttl = 0;
  };
  std::vector<Station> fleet(params.workstations);

  const int steps_per_week = 7 * 24 * 60 / step_minutes;
  const double steps_per_hour = 60.0 / step_minutes;
  for (int s = 0; s < steps_per_week; ++s) {
    const double hours = static_cast<double>(s) * step_minutes / 60.0;
    const int day = static_cast<int>(hours / 24.0) % 7;
    const double hour_of_day = std::fmod(hours, 24.0);
    double used = 0.0;
    for (auto& st : fleet) {
      // Session arrivals: calibrated so the *steady-state* occupancy tracks
      // SessionProbability. Sessions last ~2 hours.
      const double target = SessionProbability(day, hour_of_day);
      const double arrival_p = target / (2.0 * steps_per_hour);
      if (st.session_ttl == 0 && rng.Bernoulli(arrival_p)) {
        st.session_mb = params.session_min_mb +
                        rng.NextDouble() * (params.session_max_mb - params.session_min_mb);
        st.session_ttl = static_cast<int>((1.0 + 2.0 * rng.NextDouble()) * steps_per_hour);
      }
      // Batch jobs arrive at any hour and run ~4 hours.
      if (st.batch_ttl == 0 && rng.Bernoulli(params.batch_probability / (4.0 * steps_per_hour))) {
        st.batch_mb = params.batch_job_mb * (0.5 + rng.NextDouble());
        st.batch_ttl = static_cast<int>((2.0 + 4.0 * rng.NextDouble()) * steps_per_hour);
      }
      if (st.session_ttl > 0 && --st.session_ttl == 0) {
        st.session_mb = 0.0;
      }
      if (st.batch_ttl > 0 && --st.batch_ttl == 0) {
        st.batch_mb = 0.0;
      }
      used += std::min(params.memory_mb_each,
                       params.os_base_mb + st.session_mb + st.batch_mb);
    }
    UsageSample sample;
    sample.hours_since_start = hours;
    sample.day_of_week = day;
    sample.hour_of_day = hour_of_day;
    sample.used_mb = used;
    sample.free_mb = total_mb - used;
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace rmp
