// Page-reference trace capture and replay.
//
// Record the exact reference stream of any run (via PagedVm's access
// observer), persist it to a compact binary file, and replay it later as a
// Workload against any policy/backend configuration. This is the tooling
// that lets a measurement from one configuration drive apples-to-apples
// comparisons across every other one — and lets users of the library feed
// their own application traces through the pager.
//
// File format (little-endian):
//   magic   u32  'RMPT'
//   version u32  1
//   count   u64
//   events  count x u64   (bit 63 = write, bits 62..0 = virtual page)
//   crc32   u32            (over the events)

#ifndef SRC_VM_TRACE_H_
#define SRC_VM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/units.h"
#include "src/vm/paged_vm.h"

namespace rmp {

class AccessTrace {
 public:
  AccessTrace() = default;

  void Add(uint64_t vpage, bool write) {
    events_.push_back((vpage & kPageMask) | (write ? kWriteBit : 0));
  }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  uint64_t vpage(size_t i) const { return events_[i] & kPageMask; }
  bool is_write(size_t i) const { return (events_[i] & kWriteBit) != 0; }

  // Highest referenced page + 1 (the address-space size a replay needs).
  uint64_t MaxPageExclusive() const;
  int64_t CountWrites() const;

  // Attaches this trace as the observer of `vm`: every subsequent Touch is
  // appended. Detach by vm->SetAccessObserver(nullptr).
  void AttachTo(PagedVm* vm);

  // Persistence, CRC-guarded.
  Status Save(const std::string& path) const;
  static Result<AccessTrace> Load(const std::string& path);

  // Replays the trace through `vm`, spreading `cpu_seconds` of compute
  // evenly between references (matching the generators' timing model).
  Status Replay(PagedVm* vm, TimeNs* now, double cpu_seconds = 0.0) const;

  bool operator==(const AccessTrace& other) const { return events_ == other.events_; }

 private:
  static constexpr uint64_t kWriteBit = 1ull << 63;
  static constexpr uint64_t kPageMask = kWriteBit - 1;

  std::vector<uint64_t> events_;
};

}  // namespace rmp

#endif  // SRC_VM_TRACE_H_
