// §4.4: the latency of one remote-memory page transfer.
//
// Paper: 11.24 ms per 8 KB page = 1.6 ms protocol processing + 9.64 ms on
// the Ethernet; contrasted with the 45 ms (4 KB!) of Schilit & Duchamp's
// Mach-based pager, whose TCP+IPC overhead alone was ~23 ms.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/ethernet_model.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== §4.4: remote memory page-transfer latency ===\n\n");
  EthernetModel ethernet;
  const double wire_ms = ToMillis(ethernet.TransferTime(kPageWireBytes));
  const double protocol_ms = ToMillis(ethernet.ProtocolTime());
  std::printf("model:    wire %.2f ms + protocol %.2f ms = %.2f ms per 8 KB page\n", wire_ms,
              protocol_ms, wire_ms + protocol_ms);
  std::printf("paper:    wire 9.64 ms + protocol 1.60 ms = 11.24 ms per 8 KB page\n");
  std::printf("frames per page: %d (1460 B TCP payload each)\n",
              ethernet.FramesForBytes(kPageWireBytes));
  std::printf("effective bandwidth for page transfers: %.2f Mbit/s of the 10 Mbit/s wire\n\n",
              ethernet.EffectiveBandwidthMbps());

  // Cross-check against a measured run: FFT/24MB under NO_RELIABILITY has
  // pagein latency = blocking ptime per synchronous transfer.
  const auto fft = MakeFft(24.0);
  PolicyRunConfig config;
  config.policy = Policy::kNoReliability;
  config.data_servers = 4;
  auto run = RunWorkloadUnderPolicy(*fft, config);
  if (run.ok()) {
    const double per_transfer_ms =
        run->ptime_s * 1000.0 / static_cast<double>(run->backend.page_transfers);
    std::printf("measured: FFT/24MB %lld transfers, ptime %.2f s -> %.2f ms per transfer\n",
                static_cast<long long>(run->backend.page_transfers), run->ptime_s,
                per_transfer_ms);
    std::printf("(below the wire figure when pageout write-behind overlaps computation)\n");
  }
  std::printf("\nprior work (Schilit & Duchamp, 4 KB page over Mach 2.5): 45 ms/pagein,\n"
              "~19 ms TCP + ~4 ms Mach IPC; this pager's software latency is 1.6 ms.\n");
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
