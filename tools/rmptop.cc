// rmptop: live cluster introspection over the wire (DESIGN.md §17).
//
// Polls STATS_QUERY and EVENTS_QUERY against every listed memory server and
// renders a refreshing cluster view — per-server occupancy (hot/cold/zero
// tiers), overload advice, incarnations, and a merged tail of flight-recorder
// events — the way `top` renders processes. Everything shown travels over the
// same TCP frames a paging client uses; rmptop needs no shared memory with
// the servers.
//
//   $ ./rmptop 127.0.0.1:7070 127.0.0.1:7071        # live servers
//   $ ./rmptop --demo                               # self-contained fleet
//   $ ./rmptop --demo --once                        # one frame, no ANSI (CI)
//
// Flags:
//   --demo           start a loopback fleet (3 servers + traced traffic) and
//                    point the view at it; no arguments needed.
//   --once           render a single frame and exit (implies no screen clear).
//   --frames N       exit after N frames (0 = run until killed).
//   --interval-ms N  poll period between frames (default 1000).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/no_reliability.h"
#include "src/proto/wire.h"
#include "src/server/memory_server.h"
#include "src/transport/tcp.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

// --- Minimal JSON field extraction -----------------------------------------
// The introspection payloads are machine-generated flat JSON (metrics
// snapshots, event arrays); a full parser would be dead weight. These helpers
// pull one scalar / string field by key and tolerate absence (returning 0 /
// empty), which is all a status display needs.

int64_t JsonScalar(const std::string& json, const std::string& key, size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle, from);
  if (pos == std::string::npos) {
    return 0;
  }
  size_t value = pos + needle.size();
  // Metrics snapshots nest the number under {"kind":...,"value":N}.
  if (value < json.size() && json[value] == '{') {
    const size_t inner = json.find("\"value\":", value);
    const size_t close = json.find('}', value);
    if (inner == std::string::npos || (close != std::string::npos && inner > close)) {
      return 0;
    }
    value = inner + std::strlen("\"value\":");
  }
  return std::strtoll(json.c_str() + value, nullptr, 10);
}

std::string JsonString(const std::string& json, const std::string& key, size_t from = 0) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t pos = json.find(needle, from);
  if (pos == std::string::npos) {
    return "";
  }
  std::string out;
  for (size_t i = pos + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      out += json[++i];  // Good enough for \" and \\; control escapes stay visible.
      continue;
    }
    if (c == '"') {
      break;
    }
    out += c;
  }
  return out;
}

// --- Polling state ----------------------------------------------------------

struct ServerView {
  std::string addr;
  std::unique_ptr<TcpTransport> transport;
  uint64_t request_id = 1;
  uint64_t next_seq = 1;  // First event seq not yet shown.
  bool up = false;
  std::string stats_json;
};

struct EventLine {
  std::string source;
  std::string text;
};

Result<Message> Query(ServerView* view, Message request) {
  if (view->transport == nullptr || !view->transport->connected()) {
    // (Re)connect: the server may have restarted since the last frame.
    const size_t colon = view->addr.rfind(':');
    auto transport = TcpTransport::Connect(view->addr.substr(0, colon),
                                           static_cast<uint16_t>(std::strtoul(
                                               view->addr.c_str() + colon + 1, nullptr, 10)));
    if (!transport.ok()) {
      return transport.status();
    }
    view->transport = std::move(*transport);
  }
  return view->transport->Call(request);
}

void Poll(ServerView* view, std::vector<EventLine>* events) {
  view->up = false;
  auto stats = Query(view, MakeStatsQuery(view->request_id++));
  if (!stats.ok()) {
    return;
  }
  view->up = true;
  view->stats_json = std::string(IntrospectionJson(*stats));
  auto reply = Query(view, MakeEventsQuery(view->request_id++, view->next_seq));
  if (!reply.ok()) {
    return;
  }
  view->next_seq = reply->count;  // Seq the server's next append will take.
  const std::string json(IntrospectionJson(*reply));
  // Items are {"seq":...} objects; detail strings escape quotes, so this
  // prefix can only start a real item.
  for (size_t pos = json.find("{\"seq\":"); pos != std::string::npos;
       pos = json.find("{\"seq\":", pos + 1)) {
    EventLine line;
    line.source = view->addr;
    line.text = JsonString(json, "kind", pos) + " " + JsonString(json, "actor", pos) + ": " +
                JsonString(json, "detail", pos);
    events->push_back(std::move(line));
  }
}

void RenderFrame(std::vector<ServerView>* views, std::vector<EventLine>* event_tail, int frame,
                 bool clear_screen) {
  std::vector<EventLine> fresh;
  for (ServerView& view : *views) {
    Poll(&view, &fresh);
  }
  event_tail->insert(event_tail->end(), fresh.begin(), fresh.end());
  constexpr size_t kTail = 12;
  if (event_tail->size() > kTail) {
    event_tail->erase(event_tail->begin(),
                      event_tail->begin() + static_cast<long>(event_tail->size() - kTail));
  }

  if (clear_screen) {
    std::printf("\033[H\033[2J");
  }
  std::printf("rmptop — %zu servers, frame %d\n\n", views->size(), frame);
  std::printf("%-21s %5s %8s %8s %8s %7s %7s %7s %5s %4s\n", "SERVER", "UP", "CAP", "LIVE",
              "FREE", "HOT", "COLD", "ZERO", "INC", "STOP");
  for (const ServerView& view : *views) {
    if (!view.up) {
      std::printf("%-21s %5s\n", view.addr.c_str(), "DOWN");
      continue;
    }
    const std::string& j = view.stats_json;
    std::printf("%-21s %5s %8lld %8lld %8lld %7lld %7lld %7lld %5lld %4s\n", view.addr.c_str(),
                "up", static_cast<long long>(JsonScalar(j, "server.capacity_pages")),
                static_cast<long long>(JsonScalar(j, "server.live_pages")),
                static_cast<long long>(JsonScalar(j, "server.free_pages")),
                static_cast<long long>(JsonScalar(j, "server.hot_pages")),
                static_cast<long long>(JsonScalar(j, "server.cold_pages")),
                static_cast<long long>(JsonScalar(j, "server.zero_pages")),
                static_cast<long long>(JsonScalar(j, "server.incarnation")),
                JsonScalar(j, "server.advise_stop") != 0 ? "yes" : "no");
  }
  std::printf("\nrecent events (merged, newest last):\n");
  if (event_tail->empty()) {
    std::printf("  (none)\n");
  }
  for (const EventLine& line : *event_tail) {
    std::printf("  [%s] %s\n", line.source.c_str(), line.text.c_str());
  }
  std::fflush(stdout);
}

// --- Demo fleet -------------------------------------------------------------

struct ForwardingHandler : MessageHandler {
  explicit ForwardingHandler(std::shared_ptr<MemoryServer> server) : server(std::move(server)) {}
  Message Handle(const Message& request) override { return server->Handle(request); }
  std::shared_ptr<MemoryServer> server;
};

// A self-contained loopback fleet: three memory servers behind TcpServer
// listeners and one traced paging client hammering them, so every rmptop
// panel has live numbers without an external cluster.
struct DemoFleet {
  std::vector<std::shared_ptr<MemoryServer>> servers;
  std::vector<std::unique_ptr<TcpServer>> listeners;
  std::unique_ptr<NoReliabilityBackend> pager;
  std::thread traffic;
  std::atomic<bool> stop{false};

  ~DemoFleet() {
    stop.store(true);
    if (traffic.joinable()) {
      traffic.join();
    }
    pager.reset();  // Client connections close before the listeners do.
    for (auto& listener : listeners) {
      listener->Shutdown();
    }
  }
};

Result<std::unique_ptr<DemoFleet>> StartDemo(std::vector<std::string>* addrs) {
  constexpr int kServers = 3;
  auto fleet = std::make_unique<DemoFleet>();
  for (int i = 0; i < kServers; ++i) {
    MemoryServerParams params;
    params.name = "demo-" + std::to_string(i);
    params.capacity_pages = 2048;
    auto server = std::make_shared<MemoryServer>(params);
    server->events().Append(EventKind::kInfo, "demo",
                            params.name + " listening; capacity=" +
                                std::to_string(params.capacity_pages) + " pages");
    auto listener = TcpServer::Start(0, [server] {
      return std::unique_ptr<MessageHandler>(new ForwardingHandler(server));
    });
    if (!listener.ok()) {
      return listener.status();
    }
    addrs->push_back("127.0.0.1:" + std::to_string((*listener)->port()));
    fleet->servers.push_back(std::move(server));
    fleet->listeners.push_back(std::move(*listener));
  }

  Cluster cluster;
  for (int i = 0; i < kServers; ++i) {
    auto transport = TcpTransport::Connect("127.0.0.1", fleet->listeners[i]->port());
    if (!transport.ok()) {
      return transport.status();
    }
    cluster.AddPeer("demo-" + std::to_string(i), std::move(*transport));
  }
  RemotePagerParams pager_params;
  pager_params.trace.sample_per_1k = 1000;  // Trace everything: spans for free.
  fleet->pager = std::make_unique<NoReliabilityBackend>(
      std::move(cluster), std::make_shared<NetworkFabric>(), pager_params, nullptr);

  fleet->traffic = std::thread([f = fleet.get()] {
    PageBuffer page;
    uint64_t p = 0;
    while (!f->stop.load()) {
      FillPattern(page.span(), p);
      (void)f->pager->PageOut(0, p % 1024, page.span());
      (void)f->pager->PageIn(0, p % 1024, page.span());
      ++p;
      if ((p & 0x3f) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  return fleet;
}

int Main(int argc, char** argv) {
  bool demo = false;
  bool once = false;
  int frames = 0;
  int interval_ms = 1000;
  std::vector<std::string> addrs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--frames" && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      addrs.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: rmptop [--demo] [--once] [--frames N] [--interval-ms N] "
                   "[host:port ...]\n");
      return 2;
    }
  }
  if (once) {
    frames = 1;
  }

  std::unique_ptr<DemoFleet> fleet;
  if (demo) {
    auto started = StartDemo(&addrs);
    if (!started.ok()) {
      std::fprintf(stderr, "demo fleet: %s\n", started.status().ToString().c_str());
      return 1;
    }
    fleet = std::move(*started);
    // Let the traffic thread put real numbers on the board first.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (addrs.empty()) {
    std::fprintf(stderr, "rmptop: no servers given (try --demo or host:port)\n");
    return 2;
  }

  std::vector<ServerView> views;
  for (const std::string& addr : addrs) {
    ServerView view;
    view.addr = addr;
    views.push_back(std::move(view));
  }
  std::vector<EventLine> event_tail;
  const bool clear_screen = frames != 1;
  for (int frame = 1; frames == 0 || frame <= frames; ++frame) {
    RenderFrame(&views, &event_tail, frame, clear_screen);
    if (frames != 0 && frame == frames) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }

  if (fleet != nullptr) {
    // The demo doubles as the CI smoke: prove the pipeline measured real
    // server-side spans end to end before declaring success.
    fleet->stop.store(true);
    if (fleet->traffic.joinable()) {
      fleet->traffic.join();
    }
    size_t spans = 0;
    for (auto& server : fleet->servers) {
      spans += server->span_ring().size();
    }
    const MetricsSnapshot snapshot = fleet->pager->metrics().Snapshot();
    std::printf("\ndemo: %zu server spans recorded, slo.window_p99_us=%lld, "
                "slo.burn_permille=%lld\n",
                spans, static_cast<long long>(snapshot.Scalar("slo.window_p99_us")),
                static_cast<long long>(snapshot.Scalar("slo.burn_permille")));
    if (spans == 0) {
      std::fprintf(stderr, "demo: no server spans recorded — tracing pipeline broken\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace rmp

int main(int argc, char** argv) { return rmp::Main(argc, argv); }
