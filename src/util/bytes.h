// Page-sized byte buffers and the XOR kernels that parity policies build on.
//
// XorBytes is the single hottest CPU loop in the system: every pageout under
// a parity policy folds 8 KB into the client-side accumulator, and recovery
// XORs entire parity groups back together. The kernel is therefore
// runtime-dispatched (AVX2 -> SSE2 -> portable scalar), mirroring the
// SSE4.2 CRC-32C dispatch in checksum.cc: one CPUID probe at first use, no
// special compile flags required.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/util/units.h"

namespace rmp {

// One operating-system page of data (8 KB). Value-semantic; zero-filled on
// construction, which doubles as the parity-accumulator identity.
class PageBuffer {
 public:
  PageBuffer() : data_(kPageSize, 0) {}
  explicit PageBuffer(std::span<const uint8_t> bytes) : data_(kPageSize, 0) { Assign(bytes); }

  std::span<uint8_t> span() { return std::span<uint8_t>(data_.data(), data_.size()); }
  std::span<const uint8_t> span() const {
    return std::span<const uint8_t>(data_.data(), data_.size());
  }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  // Copies `bytes` into the page; a short span zero-pads the remainder.
  void Assign(std::span<const uint8_t> bytes);

  // XOR-accumulates `other` into this page (the parity-logging primitive).
  void XorWith(std::span<const uint8_t> other);

  void Clear();
  bool IsZero() const;

  bool operator==(const PageBuffer& other) const { return data_ == other.data_; }

 private:
  std::vector<uint8_t> data_;
};

// dst ^= src over `n` bytes. Runtime-dispatched to the widest vector unit the
// CPU has (AVX2, then SSE2, then the scalar loop); tolerates any alignment.
// `dst` and `src` must not overlap.
void XorBytes(uint8_t* dst, const uint8_t* src, size_t n);

// The portable word-at-a-time reference the SIMD paths are cross-checked
// against (tests, and the dispatch fallback on non-x86 builds).
void XorBytesScalar(uint8_t* dst, const uint8_t* src, size_t n);

// Name of the XorBytes implementation the dispatcher picked on this CPU:
// "avx2", "sse2" or "scalar". Benches report it alongside throughput.
std::string_view XorBytesImplName();

// True iff all `n` bytes are zero. Word-at-a-time with early exit; used by
// parity-group reclaim checks on whole pages.
bool IsZeroBytes(const uint8_t* p, size_t n);

// Fills a page with a deterministic pattern derived from `seed`, so tests and
// workloads can later verify a page's identity after round-tripping through
// servers, parity reconstruction, or the disk.
void FillPattern(std::span<uint8_t> page, uint64_t seed);

// True iff `page` matches FillPattern(seed).
bool CheckPattern(std::span<const uint8_t> page, uint64_t seed);

}  // namespace rmp

#endif  // SRC_UTIL_BYTES_H_
