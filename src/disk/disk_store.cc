#include "src/disk/disk_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rmp {

Result<DiskStore> DiskStore::Create(uint64_t blocks, const std::string& dir) {
  if (blocks == 0) {
    return InvalidArgumentError("store needs at least one block");
  }
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = tmp != nullptr ? tmp : "/tmp";
  }
  std::string path = base + "/rmp_swap_XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return IoError(std::string("mkstemp: ") + std::strerror(errno));
  }
  // Unlink immediately: the fd keeps the space alive; nothing leaks on crash.
  ::unlink(path.c_str());
  if (::ftruncate(fd, static_cast<off_t>(blocks * kPageSize)) != 0) {
    const Status status = IoError(std::string("ftruncate: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return DiskStore(fd, blocks);
}

DiskStore::DiskStore(DiskStore&& other) noexcept
    : fd_(other.fd_),
      blocks_(other.blocks_),
      bump_(other.bump_),
      allocated_(other.allocated_),
      free_runs_(std::move(other.free_runs_)) {
  other.fd_ = -1;
}

DiskStore& DiskStore::operator=(DiskStore&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    blocks_ = other.blocks_;
    bump_ = other.bump_;
    allocated_ = other.allocated_;
    free_runs_ = std::move(other.free_runs_);
    other.fd_ = -1;
  }
  return *this;
}

DiskStore::~DiskStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status DiskStore::Write(uint64_t block, std::span<const uint8_t> page) {
  if (block >= blocks_) {
    return InvalidArgumentError("block out of range");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize");
  }
  size_t done = 0;
  while (done < page.size()) {
    const ssize_t n = ::pwrite(fd_, page.data() + done, page.size() - done,
                               static_cast<off_t>(block * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status DiskStore::Read(uint64_t block, std::span<uint8_t> out) const {
  if (block >= blocks_) {
    return InvalidArgumentError("block out of range");
  }
  if (out.size() != kPageSize) {
    return InvalidArgumentError("output must be exactly kPageSize");
  }
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(block * kPageSize + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      return IoError("short read past end of store");
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

Result<uint64_t> DiskStore::Allocate(uint64_t count) {
  if (count == 0) {
    return InvalidArgumentError("cannot allocate zero blocks");
  }
  // Prefer fresh space first: swap partitions fill forward, which is what
  // gives pageouts their sequential layout.
  if (bump_ + count <= blocks_) {
    const uint64_t start = bump_;
    bump_ += count;
    allocated_ += count;
    return start;
  }
  // Fall back to a first-fit scan of freed runs.
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second >= count) {
      const uint64_t start = it->first;
      it->first += count;
      it->second -= count;
      if (it->second == 0) {
        free_runs_.erase(it);
      }
      allocated_ += count;
      return start;
    }
  }
  return NoSpaceError("swap partition full");
}

Status DiskStore::Free(uint64_t block, uint64_t count) {
  if (count == 0 || block + count > blocks_) {
    return InvalidArgumentError("bad free range");
  }
  allocated_ -= std::min(allocated_, count);
  free_runs_.emplace_back(block, count);
  std::sort(free_runs_.begin(), free_runs_.end());
  // Coalesce adjacent runs.
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& run : free_runs_) {
    if (!merged.empty() && merged.back().first + merged.back().second == run.first) {
      merged.back().second += run.second;
    } else {
      merged.push_back(run);
    }
  }
  free_runs_ = std::move(merged);
  return OkStatus();
}

}  // namespace rmp
