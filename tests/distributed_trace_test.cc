// Distributed tracing end to end (DESIGN.md §17).
//
// The tentpole claims under test: a sampled-in operation's wire trace id
// reaches every server its retries touch (failover included), the measured
// server-side spans those requests record stitch back into the client's
// trace record and stage histograms, legacy/unstamped frames cost the server
// nothing, head sampling is deterministic, and a span-ring overrun degrades
// to counted drops — never a crash.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/testbed.h"
#include "src/proto/wire.h"
#include "src/util/bytes.h"
#include "src/util/config.h"
#include "src/util/tracing.h"

namespace rmp {
namespace {

Result<std::unique_ptr<Testbed>> MakeTestbed(Policy policy, int data_servers,
                                             TestbedParams params = TestbedParams()) {
  params.policy = policy;
  params.data_servers = data_servers;
  params.server_capacity_pages = 4096;
  return Testbed::Create(params);
}

// --- Wire stamping ----------------------------------------------------------

TEST(DistributedTraceTest, LegacyUnstampedFramesRecordNoServerSpans) {
  // A frame without kFlagTraced is the pre-§17 wire format; the server must
  // take the one-flag-test fast path and leave its span ring untouched.
  MemoryServer server;
  const Message alloc = server.Handle(MakeAllocRequest(1, 1));
  ASSERT_EQ(alloc.status_code(), ErrorCode::kOk);
  PageBuffer page;
  FillPattern(page.span(), 5);
  Message out = MakePageOut(2, alloc.slot, page.span());
  ASSERT_EQ(out.trace_id(), 0u);
  EXPECT_EQ(server.Handle(out).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.Handle(MakePageIn(3, alloc.slot)).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.span_ring().size(), 0u);
  EXPECT_EQ(server.span_ring().dropped(), 0);
}

TEST(DistributedTraceTest, StampedFrameRoundTripsAndClears) {
  PageBuffer page;
  FillPattern(page.span(), 6);
  Message out = MakePageOut(1, 3, page.span());
  StampTraceId(&out, 0xdeadbeef);
  EXPECT_EQ(out.trace_id(), 0xdeadbeefu);
  // The id survives the wire byte-exact.
  auto decoded = Decode(Encode(out));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id(), 0xdeadbeefu);
  // Stamping 0 restores the legacy frame: flag and status byte both clear.
  StampTraceId(&out, 0);
  EXPECT_EQ(out.trace_id(), 0u);
  EXPECT_EQ(out.flags & kFlagTraced, 0);
}

TEST(DistributedTraceTest, TracedRequestRecordsServerSpansUnderItsId) {
  MemoryServer server;
  const Message alloc = server.Handle(MakeAllocRequest(1, 1));
  ASSERT_EQ(alloc.status_code(), ErrorCode::kOk);
  PageBuffer page;
  FillPattern(page.span(), 7);
  Message out = MakePageOut(2, alloc.slot, page.span());
  StampTraceId(&out, 77);
  ASSERT_EQ(server.Handle(out).status_code(), ErrorCode::kOk);
  const std::vector<ServerSpan> spans = server.span_ring().Spans();
  ASSERT_FALSE(spans.empty());
  bool saw_service = false;
  for (const ServerSpan& span : spans) {
    EXPECT_EQ(span.trace_id, 77u);
    EXPECT_TRUE(IsServerStage(span.stage));
    if (span.stage == TraceStage::kServerService) {
      saw_service = true;
      EXPECT_GT(span.duration, 0);
    }
  }
  EXPECT_TRUE(saw_service);
}

// --- Head sampling ----------------------------------------------------------

TEST(DistributedTraceTest, SamplingZeroLeavesEverythingCold) {
  // trace.sample_per_1k = 0 is the provably-off configuration: no ring
  // records, no wire stamps, hence no server spans anywhere.
  TestbedParams params;
  params.pager.trace.sample_per_1k = 0;
  auto testbed = MakeTestbed(Policy::kNoReliability, 2, params);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  for (uint64_t id = 0; id < 64; ++id) {
    FillPattern(page.span(), id);
    ASSERT_TRUE(backend.PageOut(0, id, page.span()).ok());
    ASSERT_TRUE(backend.PageIn(0, id, page.span()).ok());
  }
  auto* pager = (*testbed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  EXPECT_EQ(pager->tracer().total_traces(), 0);
  EXPECT_EQ(pager->tracer().size(), 0u);
  EXPECT_EQ((*testbed)->StitchServerSpans(), 0u);
  for (size_t i = 0; i < (*testbed)->server_count(); ++i) {
    EXPECT_EQ((*testbed)->server(i).span_ring().size(), 0u) << "server " << i;
  }
}

TEST(DistributedTraceTest, SampledOutOperationsStayUnstampedButStillMeasured) {
  // 10-per-1k sampling over 100 ops: the deterministic rotation admits ops
  // whose sequence number mod 1000 is below the rate — here seq 1..9, i.e.
  // exactly 9 traces — and samples out the other 91, which must still go out
  // unstamped and still feed the client stage histograms.
  TestbedParams params;
  params.pager.trace.sample_per_1k = 10;
  auto testbed = MakeTestbed(Policy::kNoReliability, 2, params);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  for (uint64_t id = 0; id < 50; ++id) {
    FillPattern(page.span(), id);
    ASSERT_TRUE(backend.PageOut(0, id, page.span()).ok());
    ASSERT_TRUE(backend.PageIn(0, id, page.span()).ok());
  }
  auto* pager = (*testbed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  EXPECT_EQ(pager->tracer().total_traces(), 9);
  EXPECT_EQ(pager->tracer().sampled_out(), 91);
  // Only the sampled-in operations were allowed to stamp the wire, so the
  // span rings hold spans for exactly those 9 distinct trace ids.
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < (*testbed)->server_count(); ++i) {
    for (const ServerSpan& span : (*testbed)->server(i).span_ring().Spans()) {
      ids.push_back(span.trace_id);
    }
  }
  ASSERT_FALSE(ids.empty());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()) - ids.begin(), 9);
}

// --- Runtime reconfiguration (trace.* knobs) --------------------------------

TEST(DistributedTraceTest, TraceConfigKeysReconfigureTheTracerLive) {
  auto config = Config::Parse(
      "trace.ring = 4\n"
      "trace.slow_op_us = 2\n"
      "trace.sample_per_1k = 1000\n"
      "trace.max_spans = 8\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  PageTracerOptions options;
  ASSERT_TRUE(ApplyTraceConfig(*config, &options).ok());
  EXPECT_EQ(options.ring_capacity, 4u);
  EXPECT_EQ(options.slow_op_ns, 2000);
  EXPECT_EQ(options.max_spans, 8u);

  MetricsRegistry registry;
  PageTracer tracer(&registry);
  tracer.Reconfigure(options);
  EXPECT_EQ(tracer.options().ring_capacity, 4u);
  // The slow-op threshold is live: a 3 µs op trips the 2 µs bar.
  const uint64_t id = tracer.Begin(TraceOp::kPageOut, 1, 0);
  ASSERT_NE(id, 0u);
  tracer.End(id, 3000, true);
  EXPECT_EQ(tracer.slow_ops(), 1);

  // slow_op_us = 0 documents "check disabled": the same op no longer counts.
  auto off = Config::Parse("trace.slow_op_us = 0\n");
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(ApplyTraceConfig(*off, &options).ok());
  EXPECT_EQ(options.slow_op_ns, 0);
  tracer.Reconfigure(options);
  const uint64_t id2 = tracer.Begin(TraceOp::kPageOut, 2, 0);
  ASSERT_NE(id2, 0u);
  tracer.End(id2, 3000, true);
  EXPECT_EQ(tracer.slow_ops(), 1);  // Unchanged: the disabled check adds nothing.

  // trace.ring = 0 documents "no ring": Begin declines, histograms still run.
  auto no_ring = Config::Parse("trace.ring = 0\n");
  ASSERT_TRUE(no_ring.ok());
  ASSERT_TRUE(ApplyTraceConfig(*no_ring, &options).ok());
  tracer.Reconfigure(options);
  EXPECT_EQ(tracer.Begin(TraceOp::kPageIn, 3, 0), 0u);
  tracer.Span(TraceStage::kService, 0, 500);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricValue* service = snapshot.Find("trace.stage.service_ns");
  ASSERT_NE(service, nullptr);
  EXPECT_GE(service->histogram.count, 1);
}

TEST(DistributedTraceTest, ObservabilityConfigReachesServersAndPager) {
  auto config = Config::Parse(
      "trace.sample_per_1k = 250\n"
      "trace.span_ring = 16\n"
      "events.ring = 32\n"
      "slo.target_ms = 5\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  TestbedParams params;
  ASSERT_TRUE(ApplyObservabilityConfig(*config, &params).ok());
  EXPECT_EQ(params.pager.trace.sample_per_1k, 250);
  EXPECT_EQ(params.server_span_ring, 16u);
  EXPECT_EQ(params.pager.events.ring_capacity, 32u);
  EXPECT_EQ(params.server_events.ring_capacity, 32u);
  EXPECT_EQ(params.pager.slo.target, Millis(5));

  auto testbed = MakeTestbed(Policy::kNoReliability, 2, params);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  EXPECT_EQ((*testbed)->server(0).span_ring().capacity(), 16u);
}

// --- Failover: one trace id across multiple servers -------------------------

TEST(DistributedTraceTest, MirroringFailoverSpansFromBothServersShareOneTraceId) {
  // Crash-after-apply on the primary's pagein: the primary records its spans,
  // dies, and the retry goes to the mirror — which must see the *same* wire
  // trace id, so the whole storm stitches into one client record.
  auto testbed = MakeTestbed(Policy::kMirroring, 2);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  FillPattern(page.span(), 11);
  ASSERT_TRUE(backend.PageOut(0, 42, page.span()).ok());

  // Drain the pageout-phase spans so only the faulted pagein remains.
  (void)(*testbed)->StitchServerSpans();

  // The plan is shared by both transports (one global op counter), so the
  // crash fires on the first PageIn wherever mirroring routes it; the retry
  // then has to fail over to the surviving copy.
  auto plan = std::make_shared<FaultPlan>(0xabcdULL);
  plan->AddRule({.kind = FaultKind::kCrashAfterApply,
                 .at_op = 0,
                 .only_type = MessageType::kPageIn});
  (*testbed)->InstallFaultPlan(0, plan);
  (*testbed)->InstallFaultPlan(1, plan);

  PageBuffer read;
  ASSERT_TRUE(backend.PageIn(0, 42, read.span()).ok());
  ASSERT_TRUE(CheckPattern(read.span(), 11));
  ASSERT_EQ(plan->faults_fired(), 1);

  auto* pager = (*testbed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  const std::vector<TraceRecord> records = pager->tracer().Records();
  ASSERT_FALSE(records.empty());
  const TraceRecord& pagein = records.back();
  EXPECT_EQ(pagein.op, TraceOp::kPageIn);
  const uint32_t wire_id = static_cast<uint32_t>(pagein.id);

  // Both servers' rings carry spans under that id: the crashed primary's
  // pre-crash service span and the mirror's successful read.
  size_t servers_with_id = 0;
  for (size_t i = 0; i < (*testbed)->server_count(); ++i) {
    const std::vector<ServerSpan> spans = (*testbed)->server(i).span_ring().Spans();
    const bool has = std::any_of(spans.begin(), spans.end(), [wire_id](const ServerSpan& s) {
      return s.trace_id == wire_id;
    });
    servers_with_id += has ? 1 : 0;
  }
  EXPECT_EQ(servers_with_id, 2u);
}

TEST(DistributedTraceTest, ParityDegradedReadCarriesTheTraceIdToEverySurvivor) {
  // Basic parity, 4 data + 1 parity. Crash one data server, then read a page
  // it held: the degraded reconstruction fans out to the survivors and the
  // parity server, all under the pagein's single trace id.
  auto testbed = MakeTestbed(Policy::kBasicParity, 4);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  ASSERT_TRUE((*testbed)->Preload(64).ok());
  (void)(*testbed)->StitchServerSpans();  // Discard the preload spans.

  // Find a page stored on server 0 by crashing it and reading until a
  // reconstruction happens; page ids map round-robin-ish, so page 0..63
  // certainly include some of server 0's.
  (*testbed)->CrashServer(0);
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer read;
  bool reconstructed = false;
  for (uint64_t id = 0; id < 64 && !reconstructed; ++id) {
    ASSERT_TRUE(backend.PageIn(0, id, read.span()).ok()) << "page " << id;
    ASSERT_TRUE(CheckPattern(read.span(), Testbed::PreloadSeed(1, id)));
    auto* pager = (*testbed)->remote_pager();
    ASSERT_NE(pager, nullptr);
    const std::vector<TraceRecord> records = pager->tracer().Records();
    ASSERT_FALSE(records.empty());
    const uint32_t wire_id = static_cast<uint32_t>(records.back().id);
    size_t servers_with_id = 0;
    for (size_t i = 1; i < (*testbed)->server_count(); ++i) {
      const std::vector<ServerSpan> spans = (*testbed)->server(i).span_ring().Spans();
      if (std::any_of(spans.begin(), spans.end(), [wire_id](const ServerSpan& s) {
            return s.trace_id == wire_id;
          })) {
        ++servers_with_id;
      }
    }
    // A reconstruction touches every survivor; a plain read touches one.
    reconstructed = servers_with_id >= 3;
  }
  EXPECT_TRUE(reconstructed)
      << "no degraded read fanned its trace id across the surviving servers";
}

// --- Stitching --------------------------------------------------------------

TEST(DistributedTraceTest, StitchedSpansLandInRecordsAndStageHistograms) {
  auto testbed = MakeTestbed(Policy::kNoReliability, 2);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  for (uint64_t id = 0; id < 16; ++id) {
    FillPattern(page.span(), id);
    ASSERT_TRUE(backend.PageOut(0, id, page.span()).ok());
  }
  const size_t stitched = (*testbed)->StitchServerSpans();
  EXPECT_GT(stitched, 0u);
  // Second drain: the rings were emptied, nothing to stitch twice.
  EXPECT_EQ((*testbed)->StitchServerSpans(), 0u);

  auto* pager = (*testbed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  // The measured histogram now has samples...
  const MetricsSnapshot snapshot = pager->metrics().Snapshot();
  const MetricValue* srv = snapshot.Find("trace.stage.srv_service_ns");
  ASSERT_NE(srv, nullptr);
  EXPECT_GT(srv->histogram.count, 0);
  // ...and the ring records carry attached server-side spans.
  bool any_server_span = false;
  for (const TraceRecord& record : pager->tracer().Records()) {
    for (const TraceSpan& span : record.spans) {
      any_server_span |= IsServerStage(span.stage);
    }
  }
  EXPECT_TRUE(any_server_span);
}

TEST(DistributedTraceTest, ServerSpanRingOverflowCountsDropsAndNeverCrashes) {
  MemoryServerParams params;
  params.span_ring_capacity = 8;
  MemoryServer server(params);
  const Message alloc = server.Handle(MakeAllocRequest(1, 64));
  ASSERT_EQ(alloc.status_code(), ErrorCode::kOk);
  ASSERT_EQ(alloc.count, 64u);
  PageBuffer page;
  FillPattern(page.span(), 1);
  for (uint64_t i = 0; i < 64; ++i) {
    Message out = MakePageOut(i + 2, alloc.slot + i, page.span());
    StampTraceId(&out, static_cast<uint32_t>(i + 1));
    ASSERT_EQ(server.Handle(out).status_code(), ErrorCode::kOk);
  }
  EXPECT_EQ(server.span_ring().size(), 8u);
  EXPECT_GT(server.span_ring().dropped(), 0);
  // The survivors are the newest spans, and the ring still serializes.
  for (const ServerSpan& span : server.span_ring().Spans()) {
    EXPECT_GT(span.trace_id, 0u);
  }
  EXPECT_NE(server.span_ring().ToJson(), "[]");

  // A zero-capacity ring is the disabled path: Record is a no-op.
  server.span_ring().SetCapacity(0);
  Message out = MakePageOut(99, alloc.slot + 5, page.span());
  StampTraceId(&out, 123);
  ASSERT_EQ(server.Handle(out).status_code(), ErrorCode::kOk);
  EXPECT_EQ(server.span_ring().size(), 0u);
}

TEST(DistributedTraceTest, SpanRingPullsBackOverTheWireAsJson) {
  // TRACE_DUMP document 1 is the remote form of the in-proc stitch.
  auto testbed = MakeTestbed(Policy::kNoReliability, 2);
  ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
  PagingBackend& backend = (*testbed)->backend();
  PageBuffer page;
  FillPattern(page.span(), 2);
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(backend.PageOut(0, id, page.span()).ok());
  }
  auto* pager = (*testbed)->remote_pager();
  ASSERT_NE(pager, nullptr);
  bool any_spans = false;
  for (size_t i = 0; i < (*testbed)->server_count(); ++i) {
    auto json = pager->cluster().peer(i).DumpServerSpans();
    ASSERT_TRUE(json.ok()) << json.status().ToString();
    any_spans |= json->find("srv_service") != std::string::npos;
  }
  EXPECT_TRUE(any_spans);
}

}  // namespace
}  // namespace rmp
