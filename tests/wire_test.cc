#include "src/proto/wire.h"

#include <gtest/gtest.h>

#include "src/util/bytes.h"

namespace rmp {
namespace {

Message SamplePage(uint64_t request_id) {
  PageBuffer page;
  FillPattern(page.span(), request_id);
  return MakePageOut(request_id, 17, page.span());
}

TEST(WireTest, HeaderSizeAudited) {
  const Message m = MakeLoadQuery(1);
  EXPECT_EQ(Encode(m).size(), kWireHeaderSize + 4);
}

TEST(WireTest, RoundTripEmptyPayload) {
  const Message m = MakeAllocRequest(7, 256);
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(WireTest, RoundTripPagePayload) {
  const Message m = SamplePage(11);
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(decoded->payload), 11));
}

// Round-trip every message constructor.
class WireRoundTripTest : public ::testing::TestWithParam<Message> {};

TEST_P(WireRoundTripTest, EncodeDecodeIdentity) {
  const Message& m = GetParam();
  auto decoded = Decode(std::span<const uint8_t>(Encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

std::vector<Message> AllMessageKinds() {
  PageBuffer page;
  FillPattern(page.span(), 3);
  std::vector<Message> all;
  all.push_back(MakeAllocRequest(1, 64));
  all.push_back(MakeAllocReply(1, 64, ErrorCode::kOk));
  all.push_back(MakeAllocReply(2, 0, ErrorCode::kNoSpace));
  all.push_back(MakeFreeRequest(3, 10, 4));
  all.push_back(MakePageOut(4, 99, page.span()));
  all.push_back(MakePageOutAck(4, 99, ErrorCode::kOk, /*advise_stop=*/true));
  all.push_back(MakePageIn(5, 99));
  all.push_back(MakePageInReply(5, 99, page.span(), ErrorCode::kOk));
  all.push_back(MakePageInReply(6, 99, {}, ErrorCode::kNotFound));
  all.push_back(MakeLoadQuery(7));
  all.push_back(MakeLoadReport(7, 100, 4096, /*advise_stop=*/false));
  all.push_back(MakeShutdown(8));
  all.push_back(MakeErrorReply(9, ErrorCode::kProtocol));
  Message delta = MakePageOut(10, 5, page.span());
  delta.type = MessageType::kDeltaPageOut;
  all.push_back(delta);
  Message merge = MakePageOut(11, 5, page.span());
  merge.type = MessageType::kXorMerge;
  all.push_back(merge);
  all.push_back(MakeAuth(12, "secret-token"));
  all.push_back(MakeAuthReply(12, ErrorCode::kOk));
  all.push_back(MakeAuthReply(13, ErrorCode::kFailedPrecondition));
  const uint64_t slots[] = {40, 41, 99};
  std::vector<uint8_t> pages;
  for (uint64_t s : slots) {
    PageBuffer p;
    FillPattern(p.span(), s);
    pages.insert(pages.end(), p.span().begin(), p.span().end());
  }
  all.push_back(MakePageOutBatch(14, slots, pages));
  all.push_back(MakePageOutBatchAck(14, 3, ErrorCode::kOk, /*advise_stop=*/true));
  all.push_back(MakePageInBatch(15, slots));
  all.push_back(MakePageInBatchReply(15, pages, ErrorCode::kOk));
  all.push_back(MakePageInBatchReply(16, {}, ErrorCode::kNotFound));
  return all;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WireRoundTripTest, ::testing::ValuesIn(AllMessageKinds()));

TEST(WireTest, AdviseStopFlagSurvives) {
  const Message ack = MakePageOutAck(1, 2, ErrorCode::kOk, true);
  auto decoded = Decode(std::span<const uint8_t>(Encode(ack)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->advise_stop());
}

TEST(WireTest, CorruptPayloadDetected) {
  std::vector<uint8_t> encoded = Encode(SamplePage(1));
  encoded[kWireHeaderSize + 4 + 100] ^= 0xff;  // Flip a payload byte.
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);
}

TEST(WireTest, BadMagicRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded[0] = 0x00;
  auto decoded = Decode(std::span<const uint8_t>(encoded));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(WireTest, UnknownTypeRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded[4] = 250;
  EXPECT_FALSE(Decode(std::span<const uint8_t>(encoded)).ok());
}

TEST(WireTest, TruncatedMessageRejected) {
  const std::vector<uint8_t> encoded = Encode(SamplePage(1));
  auto decoded = Decode(std::span<const uint8_t>(encoded.data(), encoded.size() - 1));
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTest, TrailingGarbageRejected) {
  std::vector<uint8_t> encoded = Encode(MakeLoadQuery(1));
  encoded.push_back(0);
  EXPECT_FALSE(Decode(std::span<const uint8_t>(encoded)).ok());
}

TEST(FrameReaderTest, ReassemblesFromSingleFeed) {
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(Encode(MakeLoadQuery(5))));
  auto m = reader.Next();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, MessageType::kLoadQuery);
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
}

TEST(FrameReaderTest, ReassemblesByteByByte) {
  const std::vector<uint8_t> encoded = Encode(SamplePage(21));
  FrameReader reader;
  for (size_t i = 0; i + 1 < encoded.size(); ++i) {
    reader.Feed(std::span<const uint8_t>(&encoded[i], 1));
    EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
  }
  reader.Feed(std::span<const uint8_t>(&encoded.back(), 1));
  auto m = reader.Next();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(m->payload), 21));
}

TEST(FrameReaderTest, MultipleMessagesInOneFeed) {
  std::vector<uint8_t> stream;
  EncodeTo(MakeLoadQuery(1), &stream);
  EncodeTo(SamplePage(2), &stream);
  EncodeTo(MakeShutdown(3), &stream);
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(stream));
  EXPECT_EQ(reader.Next()->type, MessageType::kLoadQuery);
  EXPECT_EQ(reader.Next()->type, MessageType::kPageOut);
  EXPECT_EQ(reader.Next()->type, MessageType::kShutdown);
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, DesynchronizedStreamReportsProtocolError) {
  FrameReader reader;
  std::vector<uint8_t> junk(kWireHeaderSize + 4, 0xab);
  reader.Feed(std::span<const uint8_t>(junk));
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kProtocol);
}

TEST(FrameReaderTest, CorruptFrameConsumedNotStuck) {
  std::vector<uint8_t> encoded = Encode(SamplePage(1));
  encoded[kWireHeaderSize + 4] ^= 0xff;
  std::vector<uint8_t> stream = encoded;
  EncodeTo(MakeLoadQuery(2), &stream);
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(stream));
  EXPECT_EQ(reader.Next().status().code(), ErrorCode::kCorruption);
  // The broken frame was consumed; the next one still parses.
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->type, MessageType::kLoadQuery);
}

TEST(WireTest, MessageTypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kPageOut), "PAGEOUT");
  EXPECT_EQ(MessageTypeName(MessageType::kLoadReport), "LOAD_REPORT");
  EXPECT_EQ(MessageTypeName(MessageType::kXorMerge), "XOR_MERGE");
  EXPECT_EQ(MessageTypeName(MessageType::kPageOutBatch), "PAGEOUT_BATCH");
  EXPECT_EQ(MessageTypeName(MessageType::kPageInBatchReply), "PAGEIN_BATCH_REPLY");
}

std::vector<uint8_t> BatchPages(std::span<const uint64_t> seeds) {
  std::vector<uint8_t> pages;
  for (uint64_t s : seeds) {
    PageBuffer p;
    FillPattern(p.span(), s);
    pages.insert(pages.end(), p.span().begin(), p.span().end());
  }
  return pages;
}

TEST(WireBatchTest, PageOutBatchLayout) {
  const uint64_t slots[] = {7, 3, 1000};
  const std::vector<uint8_t> pages = BatchPages(slots);
  const Message m = MakePageOutBatch(42, slots, pages);
  EXPECT_EQ(m.slot, 7u);  // First slot drives worker dispatch affinity.
  EXPECT_EQ(m.count, 3u);
  auto count = ValidateBatch(m);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(BatchSlot(m, i), slots[i]);
    EXPECT_TRUE(CheckPattern(BatchPage(m, i), slots[i])) << i;
  }
}

TEST(WireBatchTest, PageInBatchAndReply) {
  const uint64_t slots[] = {5, 6};
  const Message request = MakePageInBatch(1, slots);
  ASSERT_TRUE(ValidateBatch(request).ok());
  EXPECT_EQ(BatchSlot(request, 1), 6u);

  const std::vector<uint8_t> pages = BatchPages(slots);
  const Message reply = MakePageInBatchReply(1, pages, ErrorCode::kOk);
  auto count = ValidateBatch(reply);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, 2u);
  EXPECT_TRUE(CheckPattern(BatchPage(reply, 0), 5));
  EXPECT_TRUE(CheckPattern(BatchPage(reply, 1), 6));
}

TEST(WireBatchTest, BatchRoundTripsThroughFrameReader) {
  const uint64_t slots[] = {10, 11, 12, 13};
  const Message m = MakePageOutBatch(9, slots, BatchPages(slots));
  FrameReader reader;
  reader.Feed(std::span<const uint8_t>(Encode(m)));
  auto decoded = reader.Next();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(WireBatchTest, MalformedBatchesRejected) {
  const uint64_t slots[] = {1, 2};
  Message m = MakePageOutBatch(1, slots, BatchPages(slots));

  Message zero_count = m;
  zero_count.count = 0;
  EXPECT_FALSE(ValidateBatch(zero_count).ok());

  Message huge_count = m;
  huge_count.count = kMaxBatchPages + 1;
  EXPECT_FALSE(ValidateBatch(huge_count).ok());

  Message short_payload = m;
  short_payload.payload.pop_back();
  EXPECT_FALSE(ValidateBatch(short_payload).ok());

  Message count_mismatch = m;
  count_mismatch.count = 1;  // Payload still sized for two entries.
  EXPECT_FALSE(ValidateBatch(count_mismatch).ok());

  Message not_batch = MakePageIn(1, 5);
  EXPECT_FALSE(ValidateBatch(not_batch).ok());

  Message failed_reply_with_payload = MakePageInBatchReply(1, BatchPages(slots), ErrorCode::kOk);
  failed_reply_with_payload.status = static_cast<uint32_t>(ErrorCode::kNotFound);
  EXPECT_FALSE(ValidateBatch(failed_reply_with_payload).ok());
}

TEST(WireBatchTest, MaxBatchFitsWirePayloadBound) {
  EXPECT_LE(kMaxBatchPages * (8 + kPageSize), kMaxWirePayload);
}

}  // namespace
}  // namespace rmp
