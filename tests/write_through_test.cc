#include "src/core/write_through.h"

#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/net/ethernet_model.h"

namespace rmp {
namespace {

std::unique_ptr<Testbed> MakeBed(int servers, std::shared_ptr<const NetworkModel> network = {}) {
  TestbedParams params;
  params.policy = Policy::kWriteThrough;
  params.data_servers = servers;
  params.server_capacity_pages = 512;
  params.pager.alloc_extent_pages = 8;
  params.network = std::move(network);
  auto testbed = Testbed::Create(params);
  EXPECT_TRUE(testbed.ok()) << testbed.status().ToString();
  return std::move(*testbed);
}

PageBuffer Patterned(uint64_t seed) {
  PageBuffer page;
  FillPattern(page.span(), seed);
  return page;
}

TEST(WriteThroughTest, BothCopiesWritten) {
  auto bed = MakeBed(2);
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  EXPECT_EQ(bed->backend().stats().page_transfers, 20);  // Remote copies.
  EXPECT_EQ(bed->backend().stats().disk_transfers, 20);  // Disk copies.
  EXPECT_EQ(bed->server(0).live_pages() + bed->server(1).live_pages(), 20u);
}

TEST(WriteThroughTest, ReadsComeFromRemoteMemory) {
  auto bed = MakeBed(2);
  ASSERT_TRUE(bed->backend().PageOut(0, 1, Patterned(9).span()).ok());
  const auto before = bed->backend().stats().disk_transfers;
  PageBuffer in;
  ASSERT_TRUE(bed->backend().PageIn(0, 1, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 9));
  EXPECT_EQ(bed->backend().stats().disk_transfers, before);  // No disk read.
}

TEST(WriteThroughTest, SurvivesAnyServerCrashViaDisk) {
  auto bed = MakeBed(2);
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(bed->backend().PageOut(0, p, Patterned(p).span()).ok());
  }
  // Write-through survives even BOTH servers dying — the disk has it all.
  bed->CrashServer(0);
  bed->CrashServer(1);
  PageBuffer in;
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(bed->backend().PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

TEST(WriteThroughTest, RecoverReUploadsToSurvivors) {
  auto bed = MakeBed(2);
  WriteThroughBackend* backend = bed->write_through();
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(backend->PageOut(0, p, Patterned(p).span()).ok());
  }
  bed->CrashServer(0);
  TimeNs now = 0;
  ASSERT_TRUE(backend->Recover(0, &now).ok());
  // All pages now live on server 1; reads stop touching the disk.
  const auto disk_before = backend->stats().disk_transfers;
  PageBuffer in;
  for (uint64_t p = 0; p < 20; ++p) {
    ASSERT_TRUE(backend->PageIn(0, p, in.span()).ok());
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
  EXPECT_EQ(backend->stats().disk_transfers, disk_before);
}

TEST(WriteThroughTest, OverwriteKeepsBothCopiesCurrent) {
  auto bed = MakeBed(2);
  ASSERT_TRUE(bed->backend().PageOut(0, 4, Patterned(1).span()).ok());
  ASSERT_TRUE(bed->backend().PageOut(0, 4, Patterned(2).span()).ok());
  bed->CrashServer(0);
  bed->CrashServer(1);
  PageBuffer in;
  ASSERT_TRUE(bed->backend().PageIn(0, 4, in.span()).ok());
  EXPECT_TRUE(CheckPattern(in.span(), 2));
}

TEST(WriteThroughTest, PageoutCompletesAtSlowerDevice) {
  // With a very fast network, the completion is disk-bound and vice versa.
  auto fast_net = std::make_shared<ScaledBandwidthModel>(std::make_shared<EthernetModel>(), 100.0);
  auto bed = MakeBed(2, fast_net);
  TimeNs done_sum = 0;
  for (uint64_t p = 0; p < 50; ++p) {
    auto done = bed->backend().PageOut(done_sum, p, Patterned(p).span());
    ASSERT_TRUE(done.ok());
    done_sum = *done;
  }
  // The disk (15 ms/page writes behind a 35 ms lag window) dominates; the
  // 100x network alone would have finished in well under a second.
  EXPECT_GT(done_sum, Millis(300));
}

TEST(WriteThroughTest, FullClusterStillDurableOnDisk) {
  TestbedParams params;
  params.policy = Policy::kWriteThrough;
  params.data_servers = 1;
  params.server_capacity_pages = 8;  // Tiny remote memory.
  params.pager.alloc_extent_pages = 4;
  auto bed = Testbed::Create(params);
  ASSERT_TRUE(bed.ok());
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE((*bed)->backend().PageOut(0, p, Patterned(p).span()).ok()) << p;
  }
  PageBuffer in;
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE((*bed)->backend().PageIn(0, p, in.span()).ok()) << p;
    EXPECT_TRUE(CheckPattern(in.span(), p));
  }
}

}  // namespace
}  // namespace rmp
