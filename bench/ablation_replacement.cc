// Ablation: VM replacement policy (LRU / CLOCK / FIFO).
//
// The pager sees whatever fault stream the VM produces; this bench shows
// how sensitive the Fig. 2 results are to that choice. CLOCK tracks LRU
// closely (it is the practical approximation real kernels used); FIFO
// hurts the workloads with re-reference locality.

#include <cstdio>

#include "bench/bench_util.h"

namespace rmp {
namespace {

int Main() {
  std::printf("=== Ablation: page replacement policy (NO_RELIABILITY, 2 servers) ===\n\n");
  std::printf("%-8s %-7s %12s %10s %10s\n", "workload", "policy", "etime s", "pageins",
              "pageouts");
  const ReplacementKind kinds[] = {ReplacementKind::kLru, ReplacementKind::kClock,
                                   ReplacementKind::kFifo};
  for (const auto& workload : MakePaperWorkloads()) {
    for (const ReplacementKind kind : kinds) {
      const uint64_t total_pages = PagesForBytes(workload->info().data_bytes) + 32;
      TestbedParams params;
      params.policy = Policy::kNoReliability;
      params.data_servers = 2;
      params.network = PaperEthernet();
      params.server_capacity_pages = total_pages;
      auto testbed = Testbed::Create(params);
      if (!testbed.ok()) {
        continue;
      }
      RunConfig run_config;
      run_config.physical_frames = kPaperFrames;
      run_config.replacement = kind;
      auto run = SimulateRun(*workload, &(*testbed)->backend(), run_config);
      if (!run.ok()) {
        std::printf("%-8s %-7s FAILED: %s\n", workload->info().name.c_str(),
                    std::string(ReplacementKindName(kind)).c_str(),
                    run.status().ToString().c_str());
        continue;
      }
      std::printf("%-8s %-7s %12.2f %10lld %10lld\n", run->workload.c_str(),
                  std::string(ReplacementKindName(kind)).c_str(), run->etime_s,
                  static_cast<long long>(run->vm.pageins),
                  static_cast<long long>(run->vm.pageouts));
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rmp

int main() { return rmp::Main(); }
