#include "src/transport/inproc_transport.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/server/memory_server.h"
#include "src/util/bytes.h"

namespace rmp {
namespace {

class InProcTransportTest : public ::testing::Test {
 protected:
  InProcTransportTest() : server_(MakeParams()), transport_(&server_) {}

  static MemoryServerParams MakeParams() {
    MemoryServerParams params;
    params.capacity_pages = 128;
    return params;
  }

  MemoryServer server_;
  InProcTransport transport_;
};

TEST_F(InProcTransportTest, CallRoundTrips) {
  auto reply = transport_.Call(MakeAllocRequest(1, 4));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MessageType::kAllocReply);
  EXPECT_EQ(reply->count, 4u);
}

TEST_F(InProcTransportTest, PayloadSurvivesWireFormat) {
  auto alloc = transport_.Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  FillPattern(page.span(), 77);
  auto ack = transport_.Call(MakePageOut(2, alloc->slot, page.span()));
  ASSERT_TRUE(ack.ok());
  auto pagein = transport_.Call(MakePageIn(3, alloc->slot));
  ASSERT_TRUE(pagein.ok());
  EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(pagein->payload), 77));
}

TEST_F(InProcTransportTest, DisconnectMakesCallsUnavailable) {
  transport_.Disconnect();
  EXPECT_FALSE(transport_.connected());
  auto reply = transport_.Call(MakeLoadQuery(1));
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  transport_.Reconnect();
  EXPECT_TRUE(transport_.Call(MakeLoadQuery(2)).ok());
}

TEST_F(InProcTransportTest, DropNextReplyLosesOneReply) {
  transport_.DropNextReply();
  auto lost = transport_.Call(MakeAllocRequest(1, 1));
  EXPECT_EQ(lost.status().code(), ErrorCode::kUnavailable);
  // The request *was* processed server-side (the reply was lost, not the
  // request) and the connection is now down — like a mid-call crash.
  EXPECT_FALSE(transport_.connected());
  EXPECT_EQ(server_.stats().allocations, 1);
}

TEST_F(InProcTransportTest, CountsWireBytes) {
  PageBuffer page;
  auto alloc = transport_.Call(MakeAllocRequest(1, 1));
  ASSERT_TRUE(alloc.ok());
  const uint64_t before = transport_.bytes_sent();
  ASSERT_TRUE(transport_.Call(MakePageOut(2, alloc->slot, page.span())).ok());
  EXPECT_EQ(transport_.bytes_sent() - before, kWireHeaderSize + 4 + kPageSize);
  EXPECT_EQ(transport_.calls(), 2u);
}

TEST_F(InProcTransportTest, SendOneWayDelivers) {
  ASSERT_TRUE(transport_.SendOneWay(MakeShutdown(1)).ok());
  transport_.Disconnect();
  EXPECT_EQ(transport_.SendOneWay(MakeShutdown(2)).code(), ErrorCode::kUnavailable);
}

// --- CallAsync over the in-process transport --------------------------------
//
// InProcTransport inherits the default CallAsync, which completes the future
// before returning. Policies written against Start/Join pairs therefore keep
// the seed's deterministic, synchronous semantics in every simulation test.

TEST_F(InProcTransportTest, CallAsyncIsReadyImmediately) {
  RpcFuture future = transport_.CallAsync(MakeAllocRequest(1, 4));
  ASSERT_TRUE(future.valid());
  EXPECT_TRUE(future.ready());
  auto reply = future.Wait();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MessageType::kAllocReply);
  EXPECT_EQ(reply->count, 4u);
}

TEST_F(InProcTransportTest, WaitIsIdempotent) {
  RpcFuture future = transport_.CallAsync(MakeLoadQuery(1));
  auto first = future.Wait();
  auto second = future.Wait();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->type, second->type);
  EXPECT_EQ(first->request_id, second->request_id);
}

TEST_F(InProcTransportTest, CallAsyncAfterDisconnectIsReadyUnavailable) {
  transport_.Disconnect();
  RpcFuture future = transport_.CallAsync(MakeLoadQuery(1));
  ASSERT_TRUE(future.valid());
  // Even the failure is delivered synchronously: no test ever blocks.
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.Wait().status().code(), ErrorCode::kUnavailable);
}

TEST_F(InProcTransportTest, DefaultWaitOnInvalidFutureIsInternalError) {
  RpcFuture future;
  EXPECT_FALSE(future.valid());
  EXPECT_EQ(future.Wait().status().code(), ErrorCode::kInternal);
}

TEST_F(InProcTransportTest, ManyOutstandingFuturesAllResolve) {
  auto alloc = transport_.Call(MakeAllocRequest(1, 16));
  ASSERT_TRUE(alloc.ok());
  PageBuffer page;
  std::vector<RpcFuture> outs;
  for (uint64_t i = 0; i < 16; ++i) {
    FillPattern(page.span(), i);
    outs.push_back(transport_.CallAsync(MakePageOut(10 + i, alloc->slot + i, page.span())));
  }
  for (auto& future : outs) {
    auto ack = future.Wait();
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->status_code(), ErrorCode::kOk);
  }
  std::vector<RpcFuture> ins;
  for (uint64_t i = 0; i < 16; ++i) {
    ins.push_back(transport_.CallAsync(MakePageIn(30 + i, alloc->slot + i)));
  }
  for (uint64_t i = 0; i < 16; ++i) {
    auto reply = ins[i].Wait();
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(CheckPattern(std::span<const uint8_t>(reply->payload), i)) << i;
  }
}

}  // namespace
}  // namespace rmp
