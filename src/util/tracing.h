// Page-lifecycle tracing (DESIGN.md §12).
//
// The paper's evaluation decomposes pageout/pagein cost stage by stage
// (queueing, wire transfer, server service, parity work); this module is the
// instrument that produces that decomposition from live runs. Each paging
// operation gets a trace id at the policy entry point; as the operation
// crosses retry/backoff, the fabric queue, the wire, protocol service, and
// parity or disk work, the charge helpers stamp spans onto it. Completed
// traces land in a bounded ring buffer (for TRACE_DUMP introspection),
// per-stage latency histograms in a MetricsRegistry (for percentiles), and —
// when an operation exceeds the slow-op threshold — a warning log line.
//
// All times are simulated TimeNs, so traces are bit-reproducible. TraceScope
// holds a pointer to the caller's running `now` variable and finalizes the
// trace with whatever value it has when the scope unwinds; a scope opened
// while another trace is active is inert (batch paths and recovery reuse the
// same primitives without double-tracing).

#ifndef SRC_UTIL_TRACING_H_
#define SRC_UTIL_TRACING_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/metrics.h"
#include "src/util/units.h"

namespace rmp {

enum class TraceOp { kPageOut = 0, kPageIn = 1 };
inline constexpr int kNumTraceOps = 2;

// Where an operation spent its time. kService is protocol processing (the
// per-message CPU cost the paper attributes to the server and stack), kQueue
// is waiting behind earlier transfers for the shared wire, kWire the
// transfer occupancy itself.
enum class TraceStage {
  kPolicy = 0,   // Policy bookkeeping not attributed to a finer stage.
  kBackoff = 1,  // Sleeping between retry attempts.
  kQueue = 2,    // Queued behind earlier transfers on the wire Resource.
  kWire = 3,     // Wire occupancy of this transfer.
  kService = 4,  // Protocol / server service time.
  kParity = 5,   // Parity compute + parity-log traffic.
  kDisk = 6,     // Local-disk reads/writes (overflow, write-through).
};
inline constexpr int kNumTraceStages = 7;

const char* TraceOpName(TraceOp op);
const char* TraceStageName(TraceStage stage);

struct TraceSpan {
  TraceStage stage = TraceStage::kPolicy;
  TimeNs start = 0;
  DurationNs duration = 0;
};

// One completed paging operation.
struct TraceRecord {
  uint64_t id = 0;
  TraceOp op = TraceOp::kPageOut;
  uint64_t page_id = 0;
  TimeNs start = 0;
  DurationNs total = 0;
  bool ok = false;
  std::vector<TraceSpan> spans;  // In recording order.

  // Sum of span durations attributed to `stage`.
  DurationNs StageTime(TraceStage stage) const;
};

struct PageTracerOptions {
  size_t ring_capacity = 1024;
  // Operations completing in >= this much simulated time get a warning log
  // line and bump the slow-op counter; 0 disables the check.
  DurationNs slow_op_ns = 0;
  // Spans beyond this per trace are counted but not stored (a pathological
  // retry storm should not balloon a ring entry).
  size_t max_spans = 64;
};

// Not copyable; hand out pointers. Thread-safe (one mutex — tracing is for
// observability, not a contended hot path), but only one trace is active at
// a time: Begin while a trace is open returns 0, and spans recorded outside
// any open trace still feed the stage histograms.
class PageTracer {
 public:
  explicit PageTracer(MetricsRegistry* registry = nullptr,
                      const PageTracerOptions& options = PageTracerOptions());
  PageTracer(const PageTracer&) = delete;
  PageTracer& operator=(const PageTracer&) = delete;

  // Opens a trace; returns its id, or 0 if one is already active (the caller
  // treats 0 as "inert": End(0, ...) is a no-op).
  uint64_t Begin(TraceOp op, uint64_t page_id, TimeNs now);

  // Stamps a span onto the active trace (if any) and the stage histogram.
  // Zero-length spans are dropped.
  void Span(TraceStage stage, TimeNs start, TimeNs end);

  // Closes trace `id`: computes the total, pushes the record into the ring,
  // feeds the per-op total histogram, and logs if over the slow threshold.
  void End(uint64_t id, TimeNs now, bool ok);

  bool active() const;
  size_t size() const;           // Records currently held in the ring.
  int64_t total_traces() const;  // Traces ever completed.
  int64_t dropped() const;       // Ring overwrites (oldest records lost).
  int64_t slow_ops() const;

  // Ring contents, oldest first.
  std::vector<TraceRecord> Records() const;
  // JSON array of ring records (the TRACE_DUMP payload).
  std::string ToJson() const;

  void Reset();

  const PageTracerOptions& options() const { return options_; }

 private:
  void PushLocked(TraceRecord&& record);

  const PageTracerOptions options_;
  MetricsRegistry* registry_;  // May be null: ring + log only.
  // Cached metric pointers (stable for the registry's lifetime).
  std::array<HistogramMetric*, kNumTraceStages> stage_histograms_{};
  std::array<HistogramMetric*, kNumTraceOps> total_histograms_{};
  std::array<Counter*, kNumTraceOps> op_counters_{};
  Counter* slow_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;

  mutable std::mutex mutex_;
  bool active_ = false;
  TraceRecord current_;
  int64_t current_extra_spans_ = 0;
  uint64_t next_id_ = 1;
  std::vector<TraceRecord> ring_;
  size_t ring_next_ = 0;  // Next slot to (over)write.
  size_t ring_size_ = 0;
  int64_t total_traces_ = 0;
  int64_t dropped_ = 0;
  int64_t slow_ops_ = 0;
};

// RAII trace for one policy-level PageOut/PageIn. Holds a pointer to the
// caller's running simulated-time variable so the destructor closes the
// trace at whatever time the operation actually reached, on every exit path.
// Failure is the default; call set_ok() on the success path.
class TraceScope {
 public:
  TraceScope(PageTracer* tracer, TraceOp op, uint64_t page_id, const TimeNs* now)
      : tracer_(tracer), now_(now) {
    if (tracer_ != nullptr) {
      id_ = tracer_->Begin(op, page_id, *now_);
    }
  }
  ~TraceScope() {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->End(id_, *now_, ok_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_ok() { ok_ = true; }
  // Nonzero iff this scope owns the active trace.
  uint64_t id() const { return id_; }

 private:
  PageTracer* tracer_;
  const TimeNs* now_;
  uint64_t id_ = 0;
  bool ok_ = false;
};

}  // namespace rmp

#endif  // SRC_UTIL_TRACING_H_
