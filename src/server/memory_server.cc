#include "src/server/memory_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace rmp {

MemoryServer::MemoryServer(const MemoryServerParams& params) : params_(params) {}

uint64_t MemoryServer::EffectiveCapacityLocked() const {
  const double available = static_cast<double>(params_.capacity_pages) * (1.0 - native_load_);
  return available <= 0.0 ? 0 : static_cast<uint64_t>(available);
}

uint64_t MemoryServer::FreePagesLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  return capacity > reserved_slots_ ? capacity - reserved_slots_ : 0;
}

bool MemoryServer::AdviseStopLocked() const {
  const uint64_t capacity = EffectiveCapacityLocked();
  if (capacity == 0) {
    return true;
  }
  return static_cast<double>(reserved_slots_) >=
         params_.advise_stop_fraction * static_cast<double>(capacity);
}

Result<uint64_t> MemoryServer::Allocate(uint64_t pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0) {
    return InvalidArgumentError("cannot allocate zero pages");
  }
  if (FreePagesLocked() < pages) {
    ++stats_.denials;
    return NoSpaceError(params_.name + " denies allocation of " + std::to_string(pages) +
                        " pages (free " + std::to_string(FreePagesLocked()) + ")");
  }
  ++stats_.allocations;
  reserved_slots_ += pages;
  // Reuse freed slot runs first so long-lived servers do not leak slot space.
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second >= pages) {
      const uint64_t start = it->first;
      it->first += pages;
      it->second -= pages;
      if (it->second == 0) {
        free_runs_.erase(it);
      }
      return start;
    }
  }
  const uint64_t start = next_slot_;
  next_slot_ += pages;
  return start;
}

Status MemoryServer::Free(uint64_t first_slot, uint64_t pages) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  if (pages == 0 || first_slot + pages > next_slot_) {
    return InvalidArgumentError("bad free range");
  }
  for (uint64_t s = first_slot; s < first_slot + pages; ++s) {
    pages_.erase(s);
  }
  reserved_slots_ -= std::min(reserved_slots_, pages);
  free_runs_.emplace_back(first_slot, pages);
  std::sort(free_runs_.begin(), free_runs_.end());
  return OkStatus();
}

Status MemoryServer::Store(uint64_t slot, std::span<const uint8_t> page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  pages_[slot].Assign(page);
  ++stats_.pageouts_served;
  stats_.bytes_stored += page.size();
  return OkStatus();
}

Result<PageBuffer> MemoryServer::Load(uint64_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  auto it = pages_.find(slot);
  if (it == pages_.end()) {
    return NotFoundError("slot " + std::to_string(slot) + " holds no page");
  }
  ++stats_.pageins_served;
  stats_.bytes_returned += kPageSize;
  return it->second;
}

Result<PageBuffer> MemoryServer::DeltaStore(uint64_t slot, std::span<const uint8_t> page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (page.size() != kPageSize) {
    return InvalidArgumentError("page must be exactly kPageSize bytes");
  }
  PageBuffer& stored = pages_[slot];  // Absent slot zero-initializes.
  PageBuffer delta(stored.span());
  delta.XorWith(page);
  stored.Assign(page);
  ++stats_.pageouts_served;
  stats_.bytes_stored += page.size();
  return delta;
}

Status MemoryServer::XorMerge(uint64_t slot, std::span<const uint8_t> delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return UnavailableError(params_.name + " crashed");
  }
  if (slot >= next_slot_) {
    return InvalidArgumentError("slot " + std::to_string(slot) + " was never allocated");
  }
  if (delta.size() != kPageSize) {
    return InvalidArgumentError("delta must be exactly kPageSize bytes");
  }
  pages_[slot].XorWith(delta);
  ++stats_.pageouts_served;
  stats_.bytes_stored += delta.size();
  return OkStatus();
}

bool MemoryServer::Holds(uint64_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !crashed_ && pages_.count(slot) > 0;
}

std::vector<uint64_t> MemoryServer::LiveSlots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> slots;
  slots.reserve(pages_.size());
  for (const auto& [slot, page] : pages_) {
    slots.push_back(slot);
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

void MemoryServer::Crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
  pages_.clear();
  free_runs_.clear();
  reserved_slots_ = 0;
  next_slot_ = 0;
  RMP_LOG(kInfo) << params_.name << " crashed, all pages lost";
}

bool MemoryServer::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void MemoryServer::Restart() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
}

void MemoryServer::SetNativeLoad(double fraction) {
  std::lock_guard<std::mutex> lock(mutex_);
  native_load_ = std::clamp(fraction, 0.0, 1.0);
}

void MemoryServer::SetSlotDelayForTest(uint64_t slot, int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (micros <= 0) {
    slot_delays_micros_.erase(slot);
  } else {
    slot_delays_micros_[slot] = micros;
  }
}

uint64_t MemoryServer::capacity_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EffectiveCapacityLocked();
}

uint64_t MemoryServer::free_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return FreePagesLocked();
}

uint64_t MemoryServer::live_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pages_.size();
}

bool MemoryServer::ShouldAdviseStop() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return AdviseStopLocked();
}

Message MemoryServer::Handle(const Message& request) {
  int64_t delay_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slot_delays_micros_.find(request.slot);
    if (it != slot_delays_micros_.end()) {
      delay_micros = it->second;
    }
  }
  if (delay_micros > 0) {
    // Sleep outside the mutex: a stalled slot must not stall the others.
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
  switch (request.type) {
    case MessageType::kAllocRequest: {
      auto slot = Allocate(request.count);
      if (!slot.ok()) {
        Message reply = MakeAllocReply(request.request_id, 0, slot.status().code());
        return reply;
      }
      Message reply = MakeAllocReply(request.request_id, request.count, ErrorCode::kOk);
      reply.slot = *slot;
      return reply;
    }
    case MessageType::kFreeRequest: {
      const Status status = Free(request.slot, request.count);
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kPageOut: {
      const Status status = Store(request.slot, std::span<const uint8_t>(request.payload));
      return MakePageOutAck(request.request_id, request.slot, status.code(),
                            status.ok() && ShouldAdviseStop());
    }
    case MessageType::kPageIn: {
      auto page = Load(request.slot);
      if (!page.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, page.status().code());
      }
      return MakePageInReply(request.request_id, request.slot, page->span(), ErrorCode::kOk);
    }
    case MessageType::kLoadQuery: {
      std::lock_guard<std::mutex> lock(mutex_);
      return MakeLoadReport(request.request_id, FreePagesLocked(), EffectiveCapacityLocked(),
                            AdviseStopLocked());
    }
    case MessageType::kDeltaPageOut: {
      auto delta = DeltaStore(request.slot, std::span<const uint8_t>(request.payload));
      if (!delta.ok()) {
        return MakePageInReply(request.request_id, request.slot, {}, delta.status().code());
      }
      // The delta travels back in a PAGEIN_REPLY-shaped message.
      return MakePageInReply(request.request_id, request.slot, delta->span(), ErrorCode::kOk);
    }
    case MessageType::kXorMerge: {
      const Status status = XorMerge(request.slot, std::span<const uint8_t>(request.payload));
      Message reply;
      reply.type = MessageType::kXorMergeAck;
      reply.request_id = request.request_id;
      reply.slot = request.slot;
      reply.status = static_cast<uint32_t>(status.code());
      return reply;
    }
    case MessageType::kShutdown: {
      Message reply;
      reply.type = MessageType::kFreeReply;
      reply.request_id = request.request_id;
      return reply;
    }
    default:
      return MakeErrorReply(request.request_id, ErrorCode::kProtocol);
  }
}

}  // namespace rmp
