#include "src/util/config.h"

#include <gtest/gtest.h>

namespace rmp {
namespace {

TEST(ConfigTest, ParsesKeyValues) {
  auto config = Config::Parse("host = alpha\nport= 7000\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("host", ""), "alpha");
  EXPECT_EQ(config->GetInt("port", 0).value(), 7000);
}

TEST(ConfigTest, CommentsAndBlankLines) {
  auto config = Config::Parse("# registry of memory servers\n\nhost=beta # inline comment\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("host", ""), "beta");
}

TEST(ConfigTest, LaterKeysOverride) {
  auto config = Config::Parse("x=1\nx=2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("x", 0).value(), 2);
}

TEST(ConfigTest, MissingEqualsIsError) {
  auto config = Config::Parse("just a line\n");
  EXPECT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ConfigTest, EmptyKeyIsError) {
  auto config = Config::Parse("= value\n");
  EXPECT_FALSE(config.ok());
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  auto config = Config::Parse("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("absent", "dflt"), "dflt");
  EXPECT_EQ(config->GetInt("absent", 12).value(), 12);
  EXPECT_EQ(config->GetDouble("absent", 1.5).value(), 1.5);
  EXPECT_EQ(config->GetBool("absent", true).value(), true);
}

TEST(ConfigTest, MalformedTypedValuesAreErrors) {
  auto config = Config::Parse("n = twelve\nf = abc\nb = maybe\n");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->GetInt("n", 0).ok());
  EXPECT_FALSE(config->GetDouble("f", 0.0).ok());
  EXPECT_FALSE(config->GetBool("b", false).ok());
}

TEST(ConfigTest, BoolSpellings) {
  auto config = Config::Parse("a=true\nb=1\nc=off\nd=no\n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->GetBool("a", false).value());
  EXPECT_TRUE(config->GetBool("b", false).value());
  EXPECT_FALSE(config->GetBool("c", true).value());
  EXPECT_FALSE(config->GetBool("d", true).value());
}

TEST(ConfigTest, HexAndNegativeIntegers) {
  auto config = Config::Parse("hex = 0x10\nneg = -5\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("hex", 0).value(), 16);
  EXPECT_EQ(config->GetInt("neg", 0).value(), -5);
}

TEST(ConfigTest, SetAndKeys) {
  Config config;
  config.Set("b", "2");
  config.Set("a", "1");
  EXPECT_TRUE(config.Has("a"));
  EXPECT_FALSE(config.Has("c"));
  const auto keys = config.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // Sorted.
}

TEST(ConfigTest, LoadMissingFileIsIoError) {
  auto config = Config::Load("/nonexistent/rmp.conf");
  EXPECT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), ErrorCode::kIoError);
}

TEST(TrimWhitespaceTest, Basics) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("\ta b\t"), "a b");
}

}  // namespace
}  // namespace rmp
