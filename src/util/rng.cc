#include "src/util/rng.h"

#include <cmath>

namespace rmp {

double Rng::Exponential(double mean) {
  // Inverse transform; guard against log(0).
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace rmp
